"""Tests for the on-disk substrate: codec, page files, spill stores."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import AggregateSpec, make_state_factory
from repro.core.hashtable import HashAggregator
from repro.storage.pagefile import (
    PageFile,
    read_relation_file,
    write_relation_file,
)
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema, default_schema
from repro.storage.serialization import RowCodec
from repro.resources import SpillCapacityError
from repro.storage.spill import FileSpillStore, MemorySpillStore


@pytest.fixture
def schema():
    return Schema(
        [
            Column("k", "int"),
            Column("v", "float"),
            Column("tag", "str", size_bytes=8),
        ]
    )


class TestRowCodec:
    def test_roundtrip(self, schema):
        codec = RowCodec(schema)
        row = (-42, 3.25, "hello")
        assert codec.decode(codec.encode(row)) == row

    def test_fixed_width(self, schema):
        codec = RowCodec(schema)
        assert codec.row_bytes == 8 + 8 + 8
        assert len(codec.encode((1, 1.0, "ab"))) == codec.row_bytes

    def test_string_padding_stripped(self, schema):
        codec = RowCodec(schema)
        assert codec.decode(codec.encode((0, 0.0, "x")))[2] == "x"

    def test_oversized_string_rejected(self, schema):
        codec = RowCodec(schema)
        with pytest.raises(ValueError, match="exceeds"):
            codec.encode((0, 0.0, "way too long for eight"))

    def test_unicode_within_width(self, schema):
        codec = RowCodec(schema)
        row = (1, 1.0, "héllo")  # 6 bytes UTF-8
        assert codec.decode(codec.encode(row)) == row

    @given(
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(
            alphabet=st.characters(codec="ascii",
                                   exclude_characters="\x00"),
            max_size=8,
        ),
    )
    @settings(max_examples=80)
    def test_roundtrip_property(self, k, v, tag):
        schema = Schema(
            [Column("k", "int"), Column("v", "float"),
             Column("tag", "str", size_bytes=8)]
        )
        codec = RowCodec(schema)
        assert codec.decode(codec.encode((k, v, tag))) == (k, v, tag)


class TestPageFile:
    def test_roundtrip_relation(self, schema, tmp_path):
        rel = Relation(
            schema, [(i, float(i), f"t{i % 10}") for i in range(500)]
        )
        path = str(tmp_path / "rel.pages")
        write_relation_file(rel, path, page_bytes=256)
        loaded = read_relation_file(path, schema, page_bytes=256)
        assert loaded.rows == rel.rows

    def test_page_count_matches_model(self, schema, tmp_path):
        rel = Relation(schema, [(i, 0.0, "") for i in range(100)])
        path = str(tmp_path / "rel.pages")
        pagefile = write_relation_file(rel, path, page_bytes=256)
        # 256-byte page: 4-byte header + 10 × 24-byte rows.
        assert pagefile.rows_per_page == 10
        assert pagefile.num_pages() == 10

    def test_file_is_page_aligned(self, schema, tmp_path):
        rel = Relation(schema, [(i, 0.0, "") for i in range(15)])
        path = str(tmp_path / "rel.pages")
        write_relation_file(rel, path, page_bytes=256)
        assert os.path.getsize(path) % 256 == 0

    def test_read_single_page(self, schema, tmp_path):
        rel = Relation(schema, [(i, 0.0, "") for i in range(25)])
        path = str(tmp_path / "rel.pages")
        pagefile = write_relation_file(rel, path, page_bytes=256)
        page1 = pagefile.read_page(1)
        assert [r[0] for r in page1] == list(range(10, 20))

    def test_read_past_end(self, schema, tmp_path):
        rel = Relation(schema, [(1, 0.0, "")])
        path = str(tmp_path / "rel.pages")
        pagefile = write_relation_file(rel, path, page_bytes=256)
        with pytest.raises(EOFError):
            pagefile.read_page(99)

    def test_empty_file(self, schema, tmp_path):
        pagefile = PageFile(str(tmp_path / "nope"), schema, 256)
        assert pagefile.num_pages() == 0
        assert list(pagefile.scan()) == []

    def test_tiny_page_rejected(self, schema, tmp_path):
        with pytest.raises(ValueError, match="cannot hold"):
            PageFile(str(tmp_path / "x"), schema, page_bytes=16)

    def test_hundred_byte_tuples_forty_per_4k_page(self, tmp_path):
        """The paper's numbers: 100 B tuples, 4 KB pages → ~40/page."""
        schema = default_schema()
        pagefile = PageFile(str(tmp_path / "x"), schema, 4096)
        assert pagefile.rows_per_page == 40


class TestSpillStores:
    def _drive(self, store):
        store.append(0, ("v", 1, (1.0,)))
        store.append(0, ("v", 2, (2.0,)))
        store.append(3, ("v", 9, (9.0,)))
        assert store.bucket_ids() == [0, 3]
        assert store.item_count(0) == 2
        items = list(store.drain(0))
        assert items == [("v", 1, (1.0,)), ("v", 2, (2.0,))]
        assert store.item_count(0) == 0
        assert list(store.drain(0)) == []

    def test_memory_store(self):
        self._drive(MemorySpillStore())

    def test_file_store(self, tmp_path):
        store = FileSpillStore(str(tmp_path / "spill"))
        self._drive(store)
        assert store.bytes_written > 0
        store.close()

    def test_file_store_owns_tempdir(self):
        store = FileSpillStore()
        directory = store.directory
        store.append(1, ("v", 1, (1.0,)))
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.isdir(directory)

    def test_children_are_isolated(self, tmp_path):
        store = FileSpillStore(str(tmp_path / "spill"))
        child = store.child()
        store.append(1, "parent-item")
        child.append(1, "child-item")
        assert list(store.drain(1)) == ["parent-item"]
        assert list(child.drain(1)) == ["child-item"]


class TestFileSpillStoreHardening:
    def test_context_manager_cleans_up(self):
        with FileSpillStore() as store:
            store.append(0, "item")
            directory = store.directory
            assert os.path.isdir(directory)
        assert not os.path.isdir(directory)

    def test_cleanup_survives_exceptions(self):
        """Spill files must not outlive the operator that crashed."""
        directory = None
        with pytest.raises(RuntimeError, match="boom"):
            with FileSpillStore() as store:
                store.append(0, "item")
                directory = store.directory
                raise RuntimeError("boom")
        assert directory is not None
        assert not os.path.isdir(directory)

    def test_close_is_idempotent(self):
        store = FileSpillStore()
        store.append(0, "item")
        store.close()
        store.close()  # second close is a no-op, not an error
        assert not os.path.isdir(store.directory)

    def test_append_after_close_raises(self):
        store = FileSpillStore()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.append(0, "item")
        with pytest.raises(RuntimeError, match="closed"):
            store.child()

    def test_closing_root_removes_children(self, tmp_path):
        store = FileSpillStore(str(tmp_path / "spill"))
        child = store.child()
        child.append(0, "item")
        store.close()
        assert not os.path.isdir(child.directory)

    def test_byte_accounting_read_back(self):
        with FileSpillStore() as store:
            store.append(0, ("v", 1, (1.0,)))
            store.append(0, ("v", 2, (2.0,)))
            assert store.bytes_written > 0
            assert store.bytes_read == 0
            list(store.drain(0))
            assert store.bytes_read == store.bytes_written

    def test_children_share_root_totals(self, tmp_path):
        store = FileSpillStore(str(tmp_path / "spill"))
        child = store.child()
        store.append(0, "a")
        child.append(0, "b")
        assert store.total_bytes_written == (
            store.bytes_written + child.bytes_written
        )
        store.close()

    def test_max_bytes_guard(self):
        with FileSpillStore(max_bytes=64) as store:
            with pytest.raises(SpillCapacityError) as info:
                for i in range(100):
                    store.append(0, ("v", i, (float(i),)))
            assert info.value.max_bytes == 64
            assert info.value.attempted_bytes > 64
            # What was written before the guard tripped stays readable.
            assert store.item_count(0) > 0

    def test_max_bytes_shared_with_children(self, tmp_path):
        store = FileSpillStore(str(tmp_path / "spill"), max_bytes=64)
        child = store.child()
        with pytest.raises(SpillCapacityError):
            for i in range(100):
                child.append(0, ("v", i, (float(i),)))
        store.close()

    def test_max_bytes_validation(self):
        with pytest.raises(ValueError, match="max_bytes"):
            FileSpillStore(max_bytes=0)

    def test_on_bytes_hook_fires(self):
        seen = []
        with FileSpillStore(on_bytes=seen.append) as store:
            store.append(0, "item")
            store.append(1, "item2")
        assert len(seen) == 2
        assert sum(seen) == store.total_bytes_written

    def test_memory_store_context_manager(self):
        with MemorySpillStore() as store:
            store.append(0, "item")
        assert store.item_count(0) == 0


class TestFileBackedAggregation:
    def test_aggregator_spills_through_real_files(self, tmp_path):
        """The Section 2 algorithm genuinely out-of-core: a 4-entry
        table over 200 groups, overflow spooled to disk files."""
        specs = [AggregateSpec("sum", "v"), AggregateSpec("count", None)]
        store = FileSpillStore(str(tmp_path / "spill"))
        agg = HashAggregator(
            make_state_factory(specs),
            max_entries=4,
            spill_store=store,
        )
        for i in range(1000):
            agg.add_values(i % 200, (1.0, 1))
        out = {k: s.results() for k, s in agg.finish()}
        assert len(out) == 200
        assert all(v == (5.0, 5) for v in out.values())
        assert store.bytes_written > 0
        store.close()
