"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.harness import FigureResult
from repro.bench.plotting import render_chart


@pytest.fixture
def result():
    r = FigureResult("figT", "test figure", ["x", "a", "b"])
    for i in range(1, 9):
        r.add_row(float(i), float(i), float(10 - i))
    return r


class TestRenderChart:
    def test_contains_title_and_legend(self, result):
        chart = render_chart(result)
        assert "figT: test figure" in chart
        assert "o=a" in chart and "x=b" in chart

    def test_dimensions(self, result):
        chart = render_chart(result, width=40, height=10)
        lines = chart.splitlines()
        plot_lines = [line for line in lines if "|" in line]
        assert len(plot_lines) == 10
        assert all(len(line) <= 12 + 40 + 1 for line in plot_lines)

    def test_markers_present(self, result):
        chart = render_chart(result)
        assert "o" in chart and "x" in chart

    def test_series_selection(self, result):
        chart = render_chart(result, series=["b"])
        assert "o=b" in chart
        assert "=a" not in chart

    def test_y_extremes_labeled(self, result):
        chart = render_chart(result)
        assert "9" in chart  # max of series a at x=8 is 8; b max 9
        assert "1" in chart

    def test_log_x_detected(self):
        r = FigureResult("f", "t", ["s", "y"])
        for s in (1e-6, 1e-4, 1e-2, 1.0):
            r.add_row(s, 1.0)
        assert "(log)" in render_chart(r)

    def test_linear_x_not_marked_log(self, result):
        assert "(log)" not in render_chart(result)

    def test_log_y_rejects_nonpositive(self):
        r = FigureResult("f", "t", ["x", "y"])
        r.add_row(1.0, 0.0)
        r.add_row(2.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            render_chart(r, log_y=True)

    def test_empty_result(self):
        r = FigureResult("f", "t", ["x", "y"])
        assert "no data" in render_chart(r)

    def test_too_many_series_rejected(self):
        columns = ["x"] + [f"s{i}" for i in range(10)]
        r = FigureResult("f", "t", columns)
        r.add_row(*range(11))
        with pytest.raises(ValueError, match="at most"):
            render_chart(r)

    def test_non_numeric_series_skipped(self):
        r = FigureResult("f", "t", ["x", "label", "y"])
        r.add_row(1.0, "hello", 2.0)
        r.add_row(2.0, "world", 3.0)
        chart = render_chart(r)
        assert "o=y" in chart
        assert "label" not in chart.splitlines()[-1]

    def test_overlap_marker(self):
        r = FigureResult("f", "t", ["x", "a", "b"])
        r.add_row(1.0, 5.0, 5.0)
        r.add_row(2.0, 6.0, 6.0)
        chart = render_chart(r)
        assert "?" in chart
        assert "?=overlap" in chart

    def test_cli_plot_flag(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["figure", "--name", "fig5", "--plot"], out=out)
        assert code == 0
        assert "+--" in out.getvalue()
