"""The query service: admission, ladder, retry, caches, drain, HTTP.

Unit halves exercise each service component in isolation (no worker
pool); the integration halves drive :class:`QueryService` and the HTTP
front end over the *real* persistent pool, including a concurrent storm
under an injected :class:`FaultPlan`, and pin the service's hygiene
contract: after drain there are zero child processes and zero
``/dev/shm/repro_mp_*`` segments.
"""

import glob
import json
import multiprocessing
import os
import random
import socket
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from tests.conftest import assert_rows_close

from repro.obs.decisions import (
    ADMISSION_SHED,
    CACHE_SERVE,
    DEADLINE_MISS,
    QUERY_RETRY,
    DecisionLedger,
)
from repro.obs.live import validate_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_chrome_trace, validate_qlog_record
from repro.parallel import reference_aggregate
from repro.parallel.mp_executor import (
    FragmentFailedError,
    reset_pool_breaker,
    shutdown_worker_pool,
)
from repro.parallel import mp_executor
from repro.resources import MemoryBudgetPool
from repro.service import (
    AdmissionController,
    Deadline,
    DeadlineMissError,
    DrainingError,
    OverloadLadder,
    PlanCache,
    QueryFailedError,
    QueryService,
    ResultCache,
    RetryPolicy,
    ServiceConfig,
    ShedError,
    SVC_CACHE_ONLY,
    SVC_FULL,
    SVC_REDUCED,
    SVC_SHED,
)
from repro.service.http import create_server
from repro.sim.faults import CrashFault, FaultPlan
from repro.sql.parser import parse_query
from repro.workloads.generator import generate_uniform


def _segments():
    return glob.glob("/dev/shm/" + mp_executor.SHM_PREFIX + "*")


needs_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not mounted"
)


# -- components in isolation (no pool) ----------------------------------------


class TestDeadline:
    def test_no_limit(self):
        d = Deadline(None)
        assert d.absolute() is None
        assert d.remaining() is None
        assert not d.expired()
        assert d.clamp_sleep(5.0) == 5.0

    def test_expiry_and_clamp(self):
        d = Deadline(0.01)
        assert d.remaining() <= 0.01
        time.sleep(0.02)
        assert d.expired()
        assert d.remaining() == 0.0
        assert d.clamp_sleep(1.0) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestAdmissionController:
    def _controller(self, **overrides):
        config = ServiceConfig(**{
            "max_concurrency": 1, "queue_depth": 0,
            "memory_pool_bytes": 1 << 20, **overrides,
        })
        return AdmissionController(
            config, MemoryBudgetPool(config.memory_pool_bytes)
        )

    def test_admit_and_release(self):
        ctrl = self._controller()
        slot = ctrl.admit(Deadline(None))
        assert ctrl.counts() == (1, 0)
        assert ctrl.load() == 1.0
        slot.release()
        assert ctrl.counts() == (0, 0)
        slot.release()  # idempotent

    def test_queue_full_sheds(self):
        ctrl = self._controller()
        with ctrl.admit(Deadline(None)):
            with pytest.raises(ShedError) as info:
                ctrl.admit(Deadline(None))
            assert info.value.reason == "queue_full"
            assert info.value.http_status == 429

    def test_queued_waiter_gets_slot_on_release(self):
        ctrl = self._controller(queue_depth=1)
        first = ctrl.admit(Deadline(None))
        got = []

        def waiter():
            with ctrl.admit(Deadline(5.0)):
                got.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        while ctrl.counts()[1] == 0:  # wait until actually queued
            time.sleep(0.005)
        first.release()
        t.join(timeout=5)
        assert got == [True]

    def test_deadline_expires_while_queued(self):
        ctrl = self._controller(queue_depth=1)
        with ctrl.admit(Deadline(None)):
            with pytest.raises(DeadlineMissError):
                ctrl.admit(Deadline(0.05))

    def test_draining_refuses_immediately(self):
        ctrl = self._controller()
        ctrl.start_drain()
        with pytest.raises(DrainingError) as info:
            ctrl.admit(Deadline(None))
        assert info.value.http_status == 503

    def test_drain_wakes_queued_waiters(self):
        ctrl = self._controller(queue_depth=1)
        slot = ctrl.admit(Deadline(None))
        errors = []

        def waiter():
            try:
                ctrl.admit(Deadline(None))
            except DrainingError as exc:
                errors.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        while ctrl.counts()[1] == 0:
            time.sleep(0.005)
        ctrl.start_drain()
        t.join(timeout=5)
        assert len(errors) == 1
        slot.release()
        assert ctrl.wait_idle(1.0)

    def test_memory_exhaustion_sheds_and_frees_slot(self):
        config = ServiceConfig(
            max_concurrency=2, queue_depth=0,
            memory_pool_bytes=64 * 1024,
        )
        ctrl = AdmissionController(config, MemoryBudgetPool(64 * 1024))
        first = ctrl.admit(Deadline(None))  # leases the whole pool
        with pytest.raises(ShedError) as info:
            ctrl.admit(Deadline(None))
        assert info.value.reason == "memory_exhausted"
        assert ctrl.counts() == (1, 0), "failed admit must free its slot"
        first.release()
        with ctrl.admit(Deadline(None)):
            pass


class TestOverloadLadder:
    def test_rung_boundaries(self):
        ladder = OverloadLadder(reduced_load=0.5, cache_only_load=0.85)
        assert ladder.rung_for(0.0) == SVC_FULL
        assert ladder.rung_for(0.49) == SVC_FULL
        assert ladder.rung_for(0.5) == SVC_REDUCED
        assert ladder.rung_for(0.85) == SVC_CACHE_ONLY
        assert ladder.rung_for(1.0) == SVC_SHED

    def test_observe_reports_transitions_only(self):
        ladder = OverloadLadder()
        assert ladder.observe(0.1) == (SVC_FULL, None)
        rung, previous = ladder.observe(0.6)
        assert (rung, previous) == (SVC_REDUCED, SVC_FULL)
        assert ladder.observe(0.6) == (SVC_REDUCED, None)
        assert ladder.transitions == 1
        assert ladder.code() == 1

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            OverloadLadder(reduced_load=0.9, cache_only_load=0.5)


class TestRetryPolicy:
    def test_infra_causes_are_retryable(self):
        policy = RetryPolicy()
        for cause in ("WorkerDied", "HeartbeatLost", "PoisonFragment"):
            exc = FragmentFailedError(0, 1, "x", {}, cause_type=cause)
            assert policy.is_retryable(exc), cause

    def test_user_errors_are_not(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(
            FragmentFailedError(0, 1, "x", {}, cause_type="KeyError")
        )
        assert not policy.is_retryable(
            FragmentFailedError(0, 1, "x", {})
        )
        assert not policy.is_retryable(ValueError("nope"))

    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(backoff_seconds=0.1,
                             backoff_cap_seconds=0.3, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.3)
        assert policy.delay(5) == pytest.approx(0.3)

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(backoff_seconds=1.0, jitter=0.5,
                        rng=random.Random(7)).delay(0)
        b = RetryPolicy(backoff_seconds=1.0, jitter=0.5,
                        rng=random.Random(7)).delay(0)
        assert a == b
        assert 1.0 <= a <= 1.5


class TestCaches:
    def test_lru_evicts_oldest(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.hits == 3 and cache.misses == 1

    def test_plan_cache_memoizes_parse(self):
        cache = PlanCache(8)
        sql = "SELECT gkey, SUM(val) FROM r GROUP BY gkey"
        table, query = cache.parse(sql)
        assert table == "r"
        assert cache.parse(sql) == (table, query)
        assert cache.hits == 1

    def test_result_key_includes_data_version(self):
        sql = "SELECT gkey, SUM(val) FROM r GROUP BY gkey"
        k1 = ResultCache.key("r", 1, sql, "adaptive_two_phase")
        k2 = ResultCache.key("r", 2, sql, "adaptive_two_phase")
        assert k1 != k2


class TestServiceConfig:
    def test_slice_bytes_default_divides_pool(self):
        config = ServiceConfig(max_concurrency=4,
                               memory_pool_bytes=4 << 20)
        assert config.slice_bytes == 1 << 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServiceConfig(reduced_load=0.9, cache_only_load=0.5)
        with pytest.raises(ValueError):
            ServiceConfig(strategy="turbo")
        with pytest.raises(ValueError):
            ServiceConfig(slow_trace_threshold_seconds=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(query_log_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(flight_recorder_entries=0)


# -- QueryService with the executor faked (fast, no pool) ---------------------


def _tiny_dist():
    return generate_uniform(num_tuples=240, num_groups=6,
                            num_nodes=2, seed=5)


SQL = "SELECT gkey, SUM(val), COUNT(*) FROM r GROUP BY gkey"


def _service(**overrides) -> QueryService:
    defaults = {"max_concurrency": 2, "queue_depth": 2, "processes": 2}
    defaults.update(overrides)
    service = QueryService(
        ServiceConfig(**defaults),
        metrics=MetricsRegistry(),
        ledger=DecisionLedger(),
    )
    service.register_table("r", _tiny_dist())
    return service


class TestQueryServiceFakedExecutor:
    """Retry/failure classification via a monkeypatched ``run_sql``."""

    def test_infra_failure_is_retried(self, monkeypatch):
        service = _service()
        calls = []

        def flaky(sql, relation, **kwargs):
            calls.append(kwargs)
            if len(calls) == 1:
                raise FragmentFailedError(
                    0, 1, "worker died", {}, cause_type="WorkerDied"
                )
            return [(0, 1.0, 2)]

        monkeypatch.setattr("repro.service.core.run_sql", flaky)
        outcome = service.submit(SQL)
        assert outcome.rows == [(0, 1.0, 2)]
        assert outcome.retries == 1
        assert len(calls) == 2
        assert service.metrics.counter("svc.retries").value == 1
        assert len(service.ledger.events_of(QUERY_RETRY)) == 1

    def test_retries_exhaust_into_query_failed(self, monkeypatch):
        service = _service(max_query_retries=1,
                           retry_backoff_seconds=0.001)

        def always_dies(sql, relation, **kwargs):
            raise FragmentFailedError(
                0, 1, "worker died", {}, cause_type="WorkerDied"
            )

        monkeypatch.setattr("repro.service.core.run_sql", always_dies)
        with pytest.raises(QueryFailedError) as info:
            service.submit(SQL)
        assert info.value.cause_type == "WorkerDied"
        assert info.value.retries == 1

    def test_user_error_is_never_retried(self, monkeypatch):
        service = _service()
        calls = []

        def bad_phase(sql, relation, **kwargs):
            calls.append(1)
            raise FragmentFailedError(
                0, 1, "KeyError: 'nope'", {}, cause_type="KeyError"
            )

        monkeypatch.setattr("repro.service.core.run_sql", bad_phase)
        with pytest.raises(QueryFailedError) as info:
            service.submit(SQL)
        assert len(calls) == 1
        assert info.value.retries == 0

    def test_parse_error_is_typed(self):
        service = _service()
        with pytest.raises(QueryFailedError) as info:
            service.submit("SELEKT nope")
        assert info.value.cause_type == "ParseError"
        assert service.metrics.counter("svc.failed").value == 1

    def test_lex_error_is_typed(self):
        # LexError is a sibling of ParseError, not a subclass; a query
        # with an unlexable character must still map to query_failed
        # instead of escaping the service as an unhandled exception.
        service = _service()
        with pytest.raises(QueryFailedError) as info:
            service.submit("SELECT gkey FROM r GROUP BY gkey -- nope")
        assert info.value.cause_type == "LexError"
        assert service.metrics.counter("svc.failed").value == 1

    def test_unknown_table_is_typed(self):
        service = _service()
        with pytest.raises(QueryFailedError) as info:
            service.submit("SELECT k, SUM(v) FROM missing GROUP BY k")
        assert info.value.cause_type == "UnknownTable"

    def test_cache_hit_skips_executor(self, monkeypatch):
        service = _service()
        calls = []

        def run_once(sql, relation, **kwargs):
            calls.append(1)
            return [(1, 2.0, 3)]

        monkeypatch.setattr("repro.service.core.run_sql", run_once)
        first = service.submit(SQL)
        second = service.submit(SQL)
        assert len(calls) == 1
        assert not first.cache_hit and second.cache_hit
        assert second.rows == first.rows
        assert len(service.ledger.events_of(CACHE_SERVE)) == 1

    def test_bump_table_invalidates_cached_results(self, monkeypatch):
        service = _service()
        calls = []

        def run(sql, relation, **kwargs):
            calls.append(1)
            return [(len(calls),)]

        monkeypatch.setattr("repro.service.core.run_sql", run)
        assert service.submit(SQL).rows == [(1,)]
        service.bump_table("r")
        outcome = service.submit(SQL)
        assert outcome.rows == [(2,)] and not outcome.cache_hit

    def test_cache_only_rung_sheds_misses_serves_hits(self, monkeypatch):
        service = _service()
        monkeypatch.setattr(
            "repro.service.core.run_sql",
            lambda *a, **k: [(9, 9.0, 9)],
        )
        service.submit(SQL)  # populate the cache at rung FULL
        # Force the ladder's view of load into the cache-only band.
        monkeypatch.setattr(service.admission, "load", lambda: 0.9)
        hit = service.submit(SQL)
        assert hit.cache_hit and hit.rung == SVC_CACHE_ONLY
        with pytest.raises(ShedError) as info:
            service.submit(
                "SELECT gkey, COUNT(*) FROM r GROUP BY gkey"
            )
        assert info.value.reason == "overload"
        assert len(service.ledger.events_of(ADMISSION_SHED)) == 1

    def test_shed_is_counted_and_ledgered(self, monkeypatch):
        service = _service(max_concurrency=1, queue_depth=0)
        monkeypatch.setattr(
            service.admission, "admit",
            lambda deadline: (_ for _ in ()).throw(ShedError("queue_full")),
        )
        with pytest.raises(ShedError):
            service.submit(SQL)
        assert service.metrics.counter("svc.shed").value == 1
        events = service.ledger.events_of(ADMISSION_SHED)
        assert events and events[0].data["reason"] == "queue_full"

    def test_deadline_miss_from_executor(self, monkeypatch):
        from repro.parallel.mp_executor import DeadlineExceededError
        service = _service()

        def too_slow(sql, relation, **kwargs):
            raise DeadlineExceededError(0.5, 1, 4)

        monkeypatch.setattr("repro.service.core.run_sql", too_slow)
        with pytest.raises(DeadlineMissError):
            service.submit(SQL, timeout_seconds=0.5)
        assert service.metrics.counter("svc.deadline_misses").value == 1
        assert len(service.ledger.events_of(DEADLINE_MISS)) == 1

    def test_status_shape(self):
        service = _service()
        status = service.status()
        assert status["status"] == "ok"
        assert status["tables"] == ["r"]
        assert status["breaker"] in ("closed", "half_open", "open")
        assert status["running"] == 0 and status["queued"] == 0

    def test_submit_after_drain_is_refused(self, monkeypatch):
        service = _service()
        monkeypatch.setattr(
            "repro.service.core.run_sql", lambda *a, **k: [(1,)]
        )
        assert service.drain(timeout_seconds=1.0)
        with pytest.raises(DrainingError):
            service.submit(SQL)
        assert service.status()["status"] == "draining"


# -- QueryService over the real pool ------------------------------------------


@pytest.fixture
def clean_pool():
    reset_pool_breaker()
    shutdown_worker_pool()
    assert _segments() == []
    yield
    shutdown_worker_pool()
    assert _segments() == [], "service leaked shared-memory segments"
    assert multiprocessing.active_children() == []


@needs_shm
class TestQueryServicePool:
    def test_submit_matches_reference(self, clean_pool):
        dist = generate_uniform(num_tuples=1200, num_groups=30,
                                num_nodes=4, seed=7)
        service = QueryService(ServiceConfig(processes=2))
        service.register_table("r", dist)
        try:
            outcome = service.submit(SQL, timeout_seconds=60.0)
            _table, query = parse_query(SQL)
            assert_rows_close(outcome.rows,
                              reference_aggregate(dist, query))
            assert service.metrics.counter("svc.admitted").value == 1
            again = service.submit(SQL, timeout_seconds=60.0)
            assert again.cache_hit
            assert_rows_close(again.rows, outcome.rows)
        finally:
            assert service.drain()

    def test_tiny_deadline_misses_cleanly(self, clean_pool):
        dist = generate_uniform(num_tuples=1200, num_groups=30,
                                num_nodes=4, seed=9)
        service = QueryService(ServiceConfig(processes=2))
        service.register_table("r", dist)
        try:
            with pytest.raises(DeadlineMissError) as info:
                service.submit(SQL, timeout_seconds=1e-4)
            assert info.value.http_status == 504
            assert service.metrics.counter(
                "svc.deadline_misses"
            ).value == 1
        finally:
            assert service.drain()

    def test_concurrent_storm_with_faults(self, clean_pool):
        """Many threads, injected worker kills: every success is
        correct, every refusal is typed, and drain leaves nothing."""
        dist = generate_uniform(num_tuples=1600, num_groups=40,
                                num_nodes=4, seed=13)
        plan = FaultPlan(seed=11, crashes=(CrashFault(1, at_time=0.005),))
        service = QueryService(ServiceConfig(
            max_concurrency=3, queue_depth=4, processes=2,
            default_timeout_seconds=120.0, faults=plan,
        ))
        service.register_table("r", dist)
        queries = [
            SQL,
            "SELECT gkey, COUNT(*) FROM r GROUP BY gkey",
            "SELECT gkey, AVG(val) FROM r GROUP BY gkey",
        ]
        expected = {
            sql: reference_aggregate(dist, parse_query(sql)[1])
            for sql in queries
        }
        outcomes: list = []
        failures: list = []

        def client(i: int) -> None:
            sql = queries[i % len(queries)]
            try:
                outcomes.append((sql, service.submit(sql)))
            except (ShedError, DeadlineMissError) as exc:
                outcomes.append((sql, exc))  # typed refusals are fine
            except Exception as exc:  # noqa: BLE001 - the test's point
                failures.append((sql, exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        try:
            assert failures == []
            assert len(outcomes) == 6
            served = [
                (sql, o) for sql, o in outcomes
                if not isinstance(o, Exception)
            ]
            assert served, "storm served nothing at all"
            for sql, outcome in served:
                assert_rows_close(outcome.rows, expected[sql])
            assert service.metrics.counter(
                "svc.admitted"
            ).value >= len(served)
        finally:
            assert service.drain()


# -- HTTP front end ------------------------------------------------------------


def _post(port: int, path: str, body: dict | bytes):
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), response
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@needs_shm
class TestHTTPFrontEnd:
    @pytest.fixture
    def served(self, clean_pool):
        dist = generate_uniform(num_tuples=1200, num_groups=30,
                                num_nodes=4, seed=17)
        service = QueryService(ServiceConfig(
            processes=2, default_timeout_seconds=120.0
        ))
        service.register_table("r", dist)
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05})
        thread.start()
        try:
            yield service, server.server_port, dist
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.drain()

    def test_query_roundtrip_and_cache(self, served):
        service, port, dist = served
        status, body, _ = _post(port, "/query", {"sql": SQL})
        assert status == 200
        _table, query = parse_query(SQL)
        got = [tuple(row) for row in body["rows"]]
        assert_rows_close(got, reference_aggregate(dist, query))
        assert body["cache_hit"] is False
        status, body, _ = _post(port, "/query", {"sql": SQL})
        assert status == 200 and body["cache_hit"] is True

    def test_bad_requests(self, served):
        _service_, port, _dist = served
        status, body, _ = _post(port, "/query", b"{not json")
        assert (status, body["error"]) == (400, "bad_request")
        status, body, _ = _post(port, "/query", {"sql": ""})
        assert (status, body["error"]) == (400, "bad_request")
        status, body, _ = _post(port, "/query",
                                {"sql": SQL, "timeout_seconds": -1})
        assert (status, body["error"]) == (400, "bad_request")
        status, body, _ = _post(port, "/nope", {"sql": SQL})
        assert (status, body["error"]) == (404, "not_found")
        status, body = _get(port, "/nope")
        assert (status, body["error"]) == (404, "not_found")

    def test_query_failure_maps_to_400(self, served):
        _service_, port, _dist = served
        status, body, _ = _post(port, "/query", {"sql": "SELEKT x"})
        assert status == 400
        assert body["error"] == "query_failed"
        assert body["cause_type"] == "ParseError"

    def test_shed_maps_to_429_with_retry_after(self, served,
                                               monkeypatch):
        service, port, _dist = served

        def refuse(deadline):
            raise ShedError("queue_full", retry_after_seconds=0.25)

        monkeypatch.setattr(service.admission, "admit", refuse)
        status, body, response = _post(port, "/query", {"sql": SQL})
        assert status == 429
        assert body["error"] == "shed"
        assert body["reason"] == "queue_full"
        assert float(response.headers["Retry-After"]) == 0.25

    def test_healthz_and_metrics(self, served):
        service, port, _dist = served
        status, body = _get(port, "/healthz")
        assert status == 200 and body["status"] == "ok"
        _post(port, "/query", {"sql": SQL})
        status, body = _get(port, "/metrics")
        assert status == 200
        assert body["svc.admitted"]["value"] >= 1

    def test_draining_healthz_is_503(self, served):
        service, port, _dist = served
        assert service.drain()
        status, body = _get(port, "/healthz")
        assert status == 503 and body["status"] == "draining"
        status, body, _ = _post(port, "/query", {"sql": SQL})
        assert (status, body["error"]) == (503, "draining")


# -- HTTP keep-alive discipline (no pool needed) ------------------------------


@contextmanager
def _light_http(**overrides):
    """A served QueryService whose queries never touch the pool."""
    service = _service(**overrides)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05})
    thread.start()
    try:
        yield service, server.server_port
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _recv_response(reader):
    """One HTTP response off a socket file: (status, headers, body)."""
    status_line = reader.readline()
    if not status_line:
        return None, {}, b""
    headers = {}
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode().partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = reader.read(length) if length > 0 else b""
    return int(status_line.split()[1]), headers, body


class TestKeepAliveDiscipline:
    """Regression: an early 400 must never leave unread body bytes to be
    misparsed as the next pipelined request on the same connection."""

    def _connect(self, port):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.settimeout(10)
        return sock

    def test_drained_bad_json_keeps_the_connection_usable(self):
        with _light_http() as (_service_, port):
            bad = b"{not json"
            request1 = (
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(bad)).encode() + b"\r\n\r\n"
                + bad
            )
            request2 = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
            with self._connect(port) as sock:
                sock.sendall(request1 + request2)  # pipelined
                reader = sock.makefile("rb")
                status1, _, body1 = _recv_response(reader)
                assert status1 == 400
                assert json.loads(body1)["error"] == "bad_request"
                # The desync failure mode: the unread `{not json` bytes
                # get parsed as request 2's request line and /healthz
                # never answers.
                status2, _, body2 = _recv_response(reader)
                assert status2 == 200
                assert json.loads(body2)["status"] == "ok"

    def test_oversize_body_closes_the_connection(self):
        with _light_http() as (_service_, port):
            request = (
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 2097152\r\n\r\n"
            )
            with self._connect(port) as sock:
                sock.sendall(request + b"xxxx")  # body starts trickling in
                reader = sock.makefile("rb")
                status, headers, body = _recv_response(reader)
                assert status == 400
                assert json.loads(body)["error"] == "bad_request"
                # The body was not (and will not be) drained, so the
                # server must refuse to reuse the connection.
                assert headers.get("connection") == "close"
                assert reader.readline() == b""  # EOF, not a misparse

    def test_missing_content_length_closes_the_connection(self):
        with _light_http() as (_service_, port):
            sneak = b'{"sql": "x"}'
            request = (
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 0\r\n\r\n" + sneak
            )
            with self._connect(port) as sock:
                sock.sendall(request)
                reader = sock.makefile("rb")
                status, headers, _body = _recv_response(reader)
                assert status == 400
                assert headers.get("connection") == "close"
                assert reader.readline() == b""


class TestAccessLogToggle:
    def test_off_by_default(self, capfd):
        with _light_http() as (_service_, port):
            _get(port, "/healthz")
        assert '"GET /healthz' not in capfd.readouterr().err

    def test_opt_in_logs_requests(self, capfd):
        with _light_http(access_log=True) as (_service_, port):
            _get(port, "/healthz")
        assert '"GET /healthz' in capfd.readouterr().err


class TestDisabledObservabilityHTTP:
    def test_debug_endpoints_404_and_no_histograms(self):
        with _light_http(live_observability=False) as (service, port):
            status, body, _ = _post(port, "/query", {"sql": "SELEKT"})
            assert status == 400  # parse error; no pool involved
            status, body = _get(port, "/debug/queries")
            assert (status, body["error"]) == (404, "not_found")
            status, body = _get(port, "/debug/trace/1")
            assert (status, body["error"]) == (404, "not_found")
            # The disabled path records nothing: no latency histograms,
            # no query records — PR 7's metric families only.
            snapshot = service.metrics.snapshot()
            assert "svc.latency_seconds" not in snapshot
            assert "svc.queue_wait_seconds" not in snapshot
            assert service.flight_recorder is None
            assert service.query_log is None


# -- live observability over HTTP (prom, debug endpoints, storm) --------------


def _get_text(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode())


class TestLiveObservabilityFakedExecutor:
    """Prom exposition + flight recorder under a 50-thread query storm,
    with the executor faked so the storm is pure service-layer load."""

    def test_prom_scrapes_stay_valid_under_storm(self, monkeypatch):
        def fast(sql, relation, **kwargs):
            time.sleep(random.uniform(0.0, 0.002))
            return [("g", 1.0, 2)]

        monkeypatch.setattr("repro.service.core.run_sql", fast)
        with _light_http(max_concurrency=4, queue_depth=8) as (
            service, port,
        ):
            threads, per_thread = 50, 3
            outcomes = []
            outcomes_lock = threading.Lock()
            scrape_problems = []
            stop = threading.Event()

            variants = (
                "SELECT gkey, SUM(val) FROM r GROUP BY gkey",
                "SELECT gkey, COUNT(*) FROM r GROUP BY gkey",
                "SELECT gkey, MIN(val) FROM r GROUP BY gkey",
                "SELECT gkey, MAX(val) FROM r GROUP BY gkey",
            )

            def client(seed):
                rng = random.Random(seed)
                for i in range(per_thread):
                    sql = variants[rng.randrange(len(variants))]
                    status, body, _ = _post(port, "/query", {"sql": sql})
                    with outcomes_lock:
                        outcomes.append(status)

            def scraper():
                while not stop.is_set():
                    _status, ctype, text = _get_text(
                        port, "/metrics?format=prom"
                    )
                    assert ctype.startswith("text/plain; version=0.0.4")
                    problems = validate_prometheus(text)
                    if problems:
                        scrape_problems.extend(problems)
                        return
                    time.sleep(0.002)

            scrape_thread = threading.Thread(target=scraper)
            scrape_thread.start()
            clients = [
                threading.Thread(target=client, args=(i,))
                for i in range(threads)
            ]
            for t in clients:
                t.start()
            for t in clients:
                t.join()
            stop.set()
            scrape_thread.join()

            assert scrape_problems == []
            assert len(outcomes) == threads * per_thread
            assert set(outcomes) <= {200, 429}
            # One final scrape reflects the whole storm consistently.
            _status, _ctype, text = _get_text(
                port, "/metrics?format=prom"
            )
            assert validate_prometheus(text) == []
            snapshot = service.metrics.snapshot()
            latency = snapshot["svc.latency_seconds"]
            assert latency["count"] == threads * per_thread
            assert sum(latency["counts"]) == latency["count"]

    def test_debug_queries_carry_wait_and_rung(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.core.run_sql",
            lambda sql, relation, **kwargs: [("g", 1.0, 2)],
        )
        with _light_http() as (_service_, port):
            _post(port, "/query", {"sql": SQL})
            _post(port, "/query", {"sql": SQL})  # cache hit
            status, body = _get(port, "/debug/queries")
            assert status == 200
            records = body["queries"]
            assert len(records) == 2
            assert records[0]["cache_hit"] is True  # newest first
            for record in records:
                assert validate_qlog_record(record) == []
                assert record["queue_wait_seconds"] >= 0.0
                assert record["rung"] == "full"
            status, body = _get(port, "/debug/queries?n=1")
            assert len(body["queries"]) == 1
            status, body = _get(port, "/debug/queries?n=bogus")
            assert (status, body["error"]) == (400, "bad_request")
            status, body = _get(port, "/debug/trace/bogus")
            assert (status, body["error"]) == (400, "bad_request")


@needs_shm
class TestLiveObservabilityPool:
    """The acceptance path over the real pool: a slow query yields a
    valid Chrome trace, and the query log validates after drain."""

    @pytest.fixture
    def served_obs(self, clean_pool, tmp_path):
        dist = generate_uniform(num_tuples=1200, num_groups=30,
                                num_nodes=4, seed=17)
        qlog_path = tmp_path / "qlog.jsonl"
        service = QueryService(ServiceConfig(
            processes=2, default_timeout_seconds=120.0,
            slow_trace_threshold_seconds=0.0,  # every query is "slow"
            query_log_path=str(qlog_path),
        ))
        service.register_table("r", dist)
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05})
        thread.start()
        try:
            yield service, server.server_port, qlog_path
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.drain()

    def test_trace_prom_and_qlog(self, served_obs):
        service, port, qlog_path = served_obs
        status, body, _ = _post(port, "/query", {"sql": SQL})
        assert status == 200
        qid = body["query_id"]

        status, trace = _get(port, f"/debug/trace/{qid}")
        assert status == 200
        assert validate_chrome_trace(trace) == []

        status, missing = _get(port, "/debug/trace/99999")
        assert (status, missing["error"]) == (404, "not_found")

        _status, ctype, text = _get_text(port, "/metrics?format=prom")
        assert ctype.startswith("text/plain; version=0.0.4")
        assert validate_prometheus(text) == []
        assert "svc_latency_seconds_bucket" in text

        assert service.drain()
        lines = qlog_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert validate_qlog_record(record) == []
        assert record["query_id"] == qid
        assert record["outcome"] == "served"
        assert record["exec_seconds"] > 0.0
