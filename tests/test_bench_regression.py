"""Tests for the bench regression gate (baseline, compare, trajectory)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.regression import (
    STATUS_IMPROVED,
    STATUS_OK,
    STATUS_REGRESSION,
    append_trajectory,
    compare_docs,
    compare_to_baseline,
    format_delta_table,
    has_regression,
    load_index,
    seed_baseline,
    trajectory_entry,
)
from repro.obs.schema import SchemaError, validate_or_raise


def make_bench_doc(name="demo", cell=10.0, failed=0, wall=5.0):
    return {
        "schema": "repro-bench/1",
        "name": name,
        "tests": [
            {
                "nodeid": f"benchmarks/bench_{name}.py::test_{name}",
                "outcome": "passed",
                "wall_seconds": wall,
            }
        ],
        "figures": [
            {
                "figure": "fig_demo",
                "columns": ["selectivity", "two_phase", "repartitioning"],
                "rows": [
                    [0.01, cell, cell * 2],
                    [0.5, cell * 3, cell * 4],
                ],
            }
        ],
        "metrics": {
            "tests": 1,
            "failed": failed,
            "figures": 1,
            "wall_seconds_total": wall,
        },
    }


def write_results(results_dir, docs):
    results_dir.mkdir(parents=True, exist_ok=True)
    for name, doc in docs.items():
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(doc))


class TestCompareDocs:
    def test_identical_docs_are_clean(self):
        doc = make_bench_doc()
        deltas = compare_docs("demo", doc, copy.deepcopy(doc), 0.10)
        assert not has_regression(deltas)
        assert all(d.status == STATUS_OK for d in deltas)

    def test_cell_increase_beyond_threshold_regresses(self):
        base = make_bench_doc(cell=10.0)
        cur = make_bench_doc(cell=12.0)  # +20% on every figure cell
        deltas = compare_docs("demo", base, cur, 0.10)
        assert has_regression(deltas)
        bad = [d for d in deltas if d.status == STATUS_REGRESSION]
        assert all("fig_demo[" in d.where for d in bad)
        assert all(d.rel_change == pytest.approx(0.2) for d in bad)

    def test_cell_decrease_is_improvement_not_failure(self):
        base = make_bench_doc(cell=10.0)
        cur = make_bench_doc(cell=8.0)  # -20%
        deltas = compare_docs("demo", base, cur, 0.10)
        assert not has_regression(deltas)
        assert any(d.status == STATUS_IMPROVED for d in deltas)

    def test_within_threshold_is_ok(self):
        deltas = compare_docs(
            "demo", make_bench_doc(cell=10.0), make_bench_doc(cell=10.5),
            0.10,
        )
        assert not has_regression(deltas)

    def test_new_test_failure_gates_absolutely(self):
        deltas = compare_docs(
            "demo", make_bench_doc(failed=0), make_bench_doc(failed=1),
            0.10,
        )
        failed = [d for d in deltas if d.where == "metrics.failed"]
        assert failed[0].status == STATUS_REGRESSION

    def test_wall_seconds_gated_only_on_request(self):
        base = make_bench_doc(wall=5.0)
        cur = make_bench_doc(wall=50.0)  # 10x slower wall clock
        ungated = compare_docs("demo", base, cur, 0.10)
        assert not has_regression(ungated)
        gated = compare_docs(
            "demo", base, cur, 0.10, wall_threshold=0.5
        )
        wall = [d for d in gated if d.where == "metrics.wall_seconds_total"]
        assert wall[0].status == STATUS_REGRESSION

    def test_missing_row_and_cell_regress(self):
        base = make_bench_doc()
        cur = copy.deepcopy(base)
        del cur["figures"][0]["rows"][1]  # row vanished
        cur["figures"][0]["columns"] = cur["figures"][0]["columns"][:2]
        cur["figures"][0]["rows"] = [
            row[:2] for row in cur["figures"][0]["rows"]
        ]  # column vanished
        deltas = compare_docs("demo", base, cur, 0.10)
        assert has_regression(deltas)


class TestBaselineLifecycle:
    def test_seed_then_clean_compare(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "results" / "baseline"
        write_results(results, {"demo": make_bench_doc()})
        index = seed_baseline(str(results), str(baseline), ["demo"])
        assert index["benches"] == {"demo": "BENCH_demo.json"}
        assert load_index(str(baseline))["threshold"] == 0.10

        deltas, missing = compare_to_baseline(str(results), str(baseline))
        assert not missing
        assert not has_regression(deltas)

    def test_injected_regression_detected(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline"
        write_results(results, {"demo": make_bench_doc(cell=10.0)})
        seed_baseline(str(results), str(baseline), ["demo"])
        write_results(results, {"demo": make_bench_doc(cell=15.0)})
        deltas, _ = compare_to_baseline(str(results), str(baseline))
        assert has_regression(deltas)

    def test_missing_artifact_reported(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline"
        write_results(results, {"demo": make_bench_doc()})
        seed_baseline(str(results), str(baseline), ["demo"])
        (results / "BENCH_demo.json").unlink()
        deltas, missing = compare_to_baseline(str(results), str(baseline))
        assert missing == ["demo"]
        assert deltas == []

    def test_explicit_threshold_overrides_index(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline"
        write_results(results, {"demo": make_bench_doc(cell=10.0)})
        seed_baseline(str(results), str(baseline), ["demo"], threshold=0.5)
        write_results(results, {"demo": make_bench_doc(cell=12.0)})
        lax, _ = compare_to_baseline(str(results), str(baseline))
        assert not has_regression(lax)  # index threshold 0.5 tolerates +20%
        strict, _ = compare_to_baseline(
            str(results), str(baseline), threshold=0.1
        )
        assert has_regression(strict)

    def test_corrupt_baseline_raises_schema_error(self, tmp_path):
        baseline = tmp_path / "baseline"
        baseline.mkdir()
        (baseline / "INDEX.json").write_text('{"schema": "nope"}')
        with pytest.raises(SchemaError):
            load_index(str(baseline))


class TestTrajectory:
    def test_seed_writes_first_entry(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline"
        write_results(results, {"demo": make_bench_doc()})
        seed_baseline(str(results), str(baseline), ["demo"], label="seed")
        lines = (
            (baseline / "TRAJECTORY.jsonl").read_text().splitlines()
        )
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["label"] == "seed"
        assert validate_or_raise(entry, "trajectory") is None

    def test_append_accumulates_history(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline"
        write_results(results, {"demo": make_bench_doc()})
        seed_baseline(str(results), str(baseline), ["demo"])
        entry = trajectory_entry("after-pr", {"demo": make_bench_doc()})
        append_trajectory(str(baseline), entry)
        lines = (
            (baseline / "TRAJECTORY.jsonl").read_text().splitlines()
        )
        assert len(lines) == 2
        assert json.loads(lines[1])["label"] == "after-pr"

    def test_entry_summarizes_metrics(self):
        entry = trajectory_entry(
            "x", {"demo": make_bench_doc(failed=2, wall=7.5)}
        )
        summary = entry["benches"]["demo"]
        assert summary["failed"] == 2
        assert summary["wall_seconds_total"] == 7.5
        assert summary["tests"] == 1


class TestDeltaTable:
    def test_regressions_sort_first_and_summary_counts(self):
        deltas = compare_docs(
            "demo", make_bench_doc(cell=10.0), make_bench_doc(cell=15.0),
            0.10,
        )
        text = format_delta_table(deltas)
        first_data_line = text.splitlines()[1]
        assert first_data_line.startswith("regression")
        assert "4 regression(s)" in text
        assert text.splitlines()[-1].startswith("summary:")

    def test_only_interesting_hides_ok_rows(self):
        doc = make_bench_doc()
        deltas = compare_docs("demo", doc, copy.deepcopy(doc), 0.10)
        text = format_delta_table(deltas, only_interesting=True)
        # All deltas are ok: only the header and the summary remain.
        assert len(text.splitlines()) == 2
        assert "0 regression(s)" in text

    def test_missing_names_listed(self):
        text = format_delta_table([], missing=["fig9"])
        assert "missing current artifacts: fig9" in text
