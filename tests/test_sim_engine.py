"""Unit tests for the discrete-event engine."""

import pytest

from repro.costmodel.params import NetworkKind, SystemParameters
from repro.sim.engine import DeadlockError, Engine, SimulationError
from repro.sim.events import Compute, ReadPages, Recv, Send, TryRecv, WritePages
from repro.sim.network import SharedBusNetwork
from repro.sim.node import NodeContext


@pytest.fixture
def params():
    return SystemParameters.paper_default().with_(num_nodes=2)


def run(params, *program_fns, network=None):
    engine = Engine(params, network)
    ctxs = [
        NodeContext(i, len(program_fns), params, engine)
        for i in range(len(program_fns))
    ]
    gens = [fn(ctx) for fn, ctx in zip(program_fns, ctxs)]
    results, metrics = engine.run(gens)
    return results, metrics, engine


class TestCompute:
    def test_advances_clock(self, params):
        def prog(ctx):
            yield Compute(1.5)
            return "done"

        results, metrics, _ = run(params, prog)
        assert results == ["done"]
        assert metrics.node(0).finish_time == pytest.approx(1.5)
        assert metrics.node(0).cpu_seconds == pytest.approx(1.5)

    def test_tagged_breakdown(self, params):
        def prog(ctx):
            yield Compute(1.0, tag="select_cpu")
            yield Compute(2.0, tag="select_cpu")
            yield Compute(0.5, tag="merge_cpu")

        _, metrics, _ = run(params, prog)
        tags = metrics.node(0).tagged_seconds
        assert tags["select_cpu"] == pytest.approx(3.0)
        assert tags["merge_cpu"] == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)


class TestIo:
    def test_sequential_read(self, params):
        def prog(ctx):
            yield ReadPages(10)

        _, metrics, _ = run(params, prog)
        assert metrics.node(0).io_read_seconds == pytest.approx(
            10 * params.io_seconds
        )
        assert metrics.node(0).pages_read == 10

    def test_random_read_uses_rio(self, params):
        def prog(ctx):
            yield ReadPages(2, random=True)

        _, metrics, _ = run(params, prog)
        assert metrics.node(0).io_read_seconds == pytest.approx(
            2 * params.random_io_seconds
        )

    def test_write(self, params):
        def prog(ctx):
            yield WritePages(4)

        _, metrics, _ = run(params, prog)
        assert metrics.node(0).pages_written == 4

    def test_spill_tag_counts_spill_pages(self, params):
        def prog(ctx):
            yield WritePages(3, tag="spill_io")
            yield ReadPages(3, tag="spill_io")

        _, metrics, _ = run(params, prog)
        assert metrics.node(0).spill_pages == 6


class TestMessaging:
    def test_send_recv_payload(self, params):
        def sender(ctx):
            yield ctx.send(1, "data", payload=[1, 2, 3], nbytes=100)

        def receiver(ctx):
            msg = yield ctx.recv()
            return msg.payload

        results, _, _ = run(params, sender, receiver)
        assert results[1] == [1, 2, 3]

    def test_latency_delays_receiver(self, params):
        def sender(ctx):
            yield Compute(1.0)
            yield ctx.send(1, "data", nbytes=params.page_bytes)

        def receiver(ctx):
            yield ctx.recv()

        _, metrics, _ = run(params, sender, receiver)
        # receiver waits: 1.0 compute + m_p (send) + m_l + m_p (recv)
        expected = 1.0 + params.m_p + params.m_l + params.m_p
        assert metrics.node(1).finish_time == pytest.approx(expected)

    def test_recv_kind_filter(self, params):
        def sender(ctx):
            yield ctx.send(1, "noise", payload="no", nbytes=10)
            yield ctx.send(1, "data", payload="yes", nbytes=10)

        def receiver(ctx):
            msg = yield ctx.recv("data")
            return msg.payload

        results, _, _ = run(params, sender, receiver)
        assert results[1] == "yes"

    def test_fifo_per_channel(self, params):
        """A zero-byte control message never overtakes earlier data."""
        def sender(ctx):
            yield ctx.send(1, "data", payload="big", nbytes=50 * 4096)
            yield ctx.send(1, "eof")

        def receiver(ctx):
            first = yield ctx.recv()
            second = yield ctx.recv()
            return [first.kind, second.kind]

        results, _, _ = run(params, sender, receiver)
        assert results[1] == ["data", "eof"]

    def test_self_send_is_free(self, params):
        def prog(ctx):
            yield ctx.send(0, "data", payload=7, nbytes=4096)
            msg = yield ctx.recv()
            return msg.payload

        def other(ctx):
            return ()
            yield  # pragma: no cover

        results, metrics, _ = run(params, prog, other)
        assert results[0] == 7
        assert metrics.node(0).cpu_seconds == 0.0

    def test_try_recv_returns_none_when_empty(self, params):
        def prog(ctx):
            msg = yield ctx.try_recv("ping")
            return msg

        def other(ctx):
            return ()
            yield  # pragma: no cover

        results, _, _ = run(params, prog, other)
        assert results[0] is None

    def test_try_recv_sees_delivered_message(self, params):
        def sender(ctx):
            yield ctx.send(1, "ping")

        def receiver(ctx):
            yield Compute(5.0)  # the ping is long delivered by now
            msg = yield ctx.try_recv("ping")
            return msg is not None

        results, _, _ = run(params, sender, receiver)
        assert results[1] is True

    def test_try_recv_ignores_in_flight_message(self, params):
        def sender(ctx):
            yield Compute(10.0)
            yield ctx.send(1, "ping")

        def receiver(ctx):
            msg = yield ctx.try_recv("ping")  # at t=0: nothing yet
            got_early = msg is not None
            msg = yield ctx.recv("ping")
            return (got_early, msg is not None)

        results, _, _ = run(params, sender, receiver)
        assert results[1] == (False, True)

    def test_message_metrics(self, params):
        def sender(ctx):
            yield ctx.send(1, "data", nbytes=3 * params.block_bytes)

        def receiver(ctx):
            yield ctx.recv()

        _, metrics, _ = run(params, sender, receiver)
        assert metrics.node(0).messages_sent == 1
        assert metrics.node(0).blocks_sent == 3
        assert metrics.node(1).messages_received == 1
        assert metrics.network_blocks == 3


class TestBusContention:
    def test_two_senders_serialize(self):
        params = SystemParameters.paper_default().with_(
            num_nodes=3, network=NetworkKind.LIMITED_BANDWIDTH
        )

        def sender(ctx):
            yield ctx.send(2, "data", nbytes=10 * params.block_bytes)

        def receiver(ctx):
            yield ctx.recv()
            yield ctx.recv()

        net = SharedBusNetwork(params.m_l)
        engine = Engine(params, net)
        ctxs = [NodeContext(i, 3, params, engine) for i in range(3)]
        _, metrics = engine.run(
            [sender(ctxs[0]), sender(ctxs[1]), receiver(ctxs[2])]
        )
        # 20 blocks must cross a serial bus: makespan >= 20 · m_l.
        assert metrics.node(2).finish_time >= 20 * params.m_l


class TestFailureModes:
    def test_deadlock_detected(self, params):
        def waiter(ctx):
            yield ctx.recv("never")

        def done(ctx):
            return ()
            yield  # pragma: no cover

        with pytest.raises(DeadlockError, match="never"):
            run(params, waiter, done)

    def test_bad_request_rejected(self, params):
        def prog(ctx):
            yield "not a request"

        with pytest.raises(SimulationError, match="unsupported request"):
            run(params, prog)


class TestDeterminism:
    def test_identical_runs(self, params):
        def make_programs():
            def ping(ctx):
                for i in range(10):
                    yield ctx.send(1, "m", payload=i, nbytes=64)
                yield ctx.send(1, "eof")

            def pong(ctx):
                got = []
                while True:
                    msg = yield ctx.recv()
                    if msg.kind == "eof":
                        return got
                    got.append(msg.payload)

            return ping, pong

        r1, m1, _ = run(params, *make_programs())
        r2, m2, _ = run(params, *make_programs())
        assert r1 == r2
        assert m1.node(1).finish_time == m2.node(1).finish_time


class TestTrace:
    def test_log_records_time_and_node(self, params):
        def prog(ctx):
            yield Compute(2.0)
            ctx.log("checkpoint", detail=42)

        _, _, engine = run(params, prog)
        assert len(engine.trace) == 1
        event = engine.trace[0]
        assert event.time == pytest.approx(2.0)
        assert event.node == 0
        assert event.what == "checkpoint"
        assert event.detail == {"detail": 42}
