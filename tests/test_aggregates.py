"""Unit tests for the aggregate partial states."""

import pytest

from repro.core.aggregates import (
    AggregateSpec,
    AvgState,
    CountDistinctState,
    CountState,
    GroupState,
    MaxState,
    MinState,
    SumState,
    make_state_factory,
)


class TestCount:
    def test_counts_values(self):
        s = CountState()
        for v in (1, 2, 3):
            s.update(v)
        assert s.result() == 3

    def test_ignores_none(self):
        s = CountState()
        s.update(None)
        s.update(1)
        assert s.result() == 1

    def test_merge(self):
        a, b = CountState(), CountState()
        a.update(1)
        b.update(2)
        b.update(3)
        a.merge(b)
        assert a.result() == 3

    def test_copy_independent(self):
        a = CountState()
        a.update(1)
        b = a.copy()
        b.update(2)
        assert a.result() == 1
        assert b.result() == 2


class TestSum:
    def test_sum(self):
        s = SumState()
        for v in (1.5, 2.5):
            s.update(v)
        assert s.result() == 4.0

    def test_empty_is_none(self):
        assert SumState().result() is None

    def test_all_none_is_none(self):
        s = SumState()
        s.update(None)
        assert s.result() is None

    def test_merge_empty_keeps_none(self):
        a, b = SumState(), SumState()
        a.merge(b)
        assert a.result() is None

    def test_merge_into_empty(self):
        a, b = SumState(), SumState()
        b.update(5)
        a.merge(b)
        assert a.result() == 5

    def test_sum_of_zeros_is_zero_not_none(self):
        s = SumState()
        s.update(0)
        assert s.result() == 0


class TestMinMax:
    def test_min(self):
        s = MinState()
        for v in (3, 1, 2):
            s.update(v)
        assert s.result() == 1

    def test_max(self):
        s = MaxState()
        for v in (3, 7, 2):
            s.update(v)
        assert s.result() == 7

    def test_empty_is_none(self):
        assert MinState().result() is None
        assert MaxState().result() is None

    def test_merge_min(self):
        a, b = MinState(), MinState()
        a.update(5)
        b.update(2)
        a.merge(b)
        assert a.result() == 2

    def test_merge_with_empty(self):
        a, b = MaxState(), MaxState()
        a.update(5)
        a.merge(b)
        assert a.result() == 5

    def test_strings(self):
        s = MinState()
        for v in ("pear", "apple"):
            s.update(v)
        assert s.result() == "apple"


class TestAvg:
    def test_avg(self):
        s = AvgState()
        for v in (2.0, 4.0):
            s.update(v)
        assert s.result() == 3.0

    def test_empty_is_none(self):
        assert AvgState().result() is None

    def test_merge_is_exact(self):
        """The Section 3.2 example: partials carry (sum, count)."""
        a, b = AvgState(), AvgState()
        a.update(1.0)          # avg 1.0 over 1 value
        for v in (10.0, 20.0, 30.0):
            b.update(v)        # avg 20.0 over 3 values
        a.merge(b)
        assert a.result() == pytest.approx(61.0 / 4)

    def test_mixed_raw_and_partial(self):
        """A raw tuple and a merged partial land in the same state."""
        s = AvgState()
        s.update(10.0)
        partial = AvgState()
        partial.update(20.0)
        partial.update(30.0)
        s.merge(partial)
        s.update(40.0)
        assert s.result() == pytest.approx(25.0)


class TestCountDistinct:
    def test_distinct(self):
        s = CountDistinctState()
        for v in (1, 1, 2, 2, 3):
            s.update(v)
        assert s.result() == 3

    def test_merge_unions(self):
        a, b = CountDistinctState(), CountDistinctState()
        a.update(1)
        b.update(1)
        b.update(2)
        a.merge(b)
        assert a.result() == 2

    def test_copy_independent(self):
        a = CountDistinctState()
        a.update(1)
        b = a.copy()
        b.update(2)
        assert a.result() == 1


class TestAggregateSpec:
    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            AggregateSpec("median", "val")

    def test_count_star_allows_no_column(self):
        assert AggregateSpec("count", None).output_name == "count(*)"

    def test_non_count_requires_column(self):
        with pytest.raises(ValueError, match="requires a column"):
            AggregateSpec("sum", None)

    def test_alias_wins(self):
        spec = AggregateSpec("sum", "val", alias="total")
        assert spec.output_name == "total"

    def test_default_output_name(self):
        assert AggregateSpec("avg", "val").output_name == "avg(val)"

    def test_new_state_types(self):
        assert isinstance(AggregateSpec("sum", "v").new_state(), SumState)
        assert isinstance(AggregateSpec("avg", "v").new_state(), AvgState)


class TestGroupState:
    SPECS = [
        AggregateSpec("sum", "v"),
        AggregateSpec("count", None),
        AggregateSpec("avg", "v"),
    ]

    def test_update_all_states(self):
        g = GroupState(self.SPECS)
        g.update((2.0, 1, 2.0))
        g.update((4.0, 1, 4.0))
        assert g.results() == (6.0, 2, 3.0)

    def test_merge(self):
        a = GroupState(self.SPECS)
        b = GroupState(self.SPECS)
        a.update((2.0, 1, 2.0))
        b.update((4.0, 1, 4.0))
        a.merge(b)
        assert a.results() == (6.0, 2, 3.0)

    def test_copy_independent(self):
        a = GroupState(self.SPECS)
        a.update((1.0, 1, 1.0))
        b = a.copy()
        b.update((1.0, 1, 1.0))
        assert a.results()[1] == 1
        assert b.results()[1] == 2

    def test_factory_requires_specs(self):
        with pytest.raises(ValueError):
            make_state_factory([])

    def test_factory_produces_fresh_states(self):
        factory = make_state_factory(self.SPECS)
        g1, g2 = factory(), factory()
        g1.update((1.0, 1, 1.0))
        assert g2.results() == (None, 0, None)
