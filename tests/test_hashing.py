"""Unit tests for the stable partitioning hash."""

import subprocess
import sys

import pytest

from repro.storage.hashing import bucket_of, stable_hash


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_types_do_not_collide_trivially(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(1) != stable_hash(1.0)

    def test_ints(self):
        assert stable_hash(0) != stable_hash(1)
        assert stable_hash(-1) != stable_hash(1)

    def test_large_ints(self):
        assert stable_hash(2**80) != stable_hash(2**80 + 1)

    def test_tuples(self):
        assert stable_hash((1, "a")) == stable_hash((1, "a"))
        assert stable_hash((1, "a")) != stable_hash(("a", 1))

    def test_nested_tuples(self):
        assert stable_hash(((1, 2), 3)) != stable_hash((1, (2, 3)))

    def test_empty_tuple(self):
        assert isinstance(stable_hash(()), int)

    def test_none(self):
        assert isinstance(stable_hash(None), int)

    def test_bool_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_bytes(self):
        assert stable_hash(b"ab") != stable_hash("ab")

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError, match="unhashable partition key"):
            stable_hash([1, 2])

    def test_64_bit_range(self):
        for value in (0, "x", (1, 2), None, 3.5):
            h = stable_hash(value)
            assert 0 <= h < 2**64

    def test_stable_across_processes(self):
        """Unlike builtin hash, stable_hash must survive PYTHONHASHSEED."""
        code = (
            "from repro.storage.hashing import stable_hash;"
            "print(stable_hash(('group', 42)))"
        )
        outs = set()
        for seed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=False,
            )
            if proc.returncode != 0:
                pytest.skip(f"subprocess unavailable: {proc.stderr}")
            outs.add(proc.stdout.strip())
        assert len(outs) == 1
        assert outs == {str(stable_hash(("group", 42)))}

    def test_distribution_roughly_uniform(self):
        counts = [0] * 8
        for i in range(8000):
            counts[bucket_of(i, 8)] += 1
        assert min(counts) > 800  # no bucket starved


class TestBucketOf:
    def test_in_range(self):
        for i in range(100):
            assert 0 <= bucket_of(i, 7) < 7

    def test_single_bucket(self):
        assert bucket_of("anything", 1) == 0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            bucket_of(1, 0)
