"""Spill equivalence: any byte budget yields the ungoverned answer.

The whole point of the degradation ladder is that memory pressure only
changes *how* an algorithm computes — stalls, spills, switches — never
*what* it computes.  These tests pin that property: every algorithm, run
under budgets from generous down to the minimum viable, produces the
same rows as the unbounded run (modulo float summation order, the same
tolerance the rest of the suite uses).
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import assert_rows_close, rows_close

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, run_algorithm
from repro.resources import MemoryPolicy
from repro.workloads.generator import generate_uniform, generate_zipf

NUM_NODES = 4
NUM_TUPLES = 2400
NUM_GROUPS = 300


@pytest.fixture(scope="module")
def dist():
    return generate_uniform(
        num_tuples=NUM_TUPLES, num_groups=NUM_GROUPS,
        num_nodes=NUM_NODES, seed=17,
    )


@pytest.fixture(scope="module")
def query():
    return AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )


@pytest.fixture(scope="module")
def baseline(dist, query):
    return {
        alg: run_algorithm(alg, dist, query).rows for alg in ALGORITHMS
    }


def working_set_bytes(dist, query) -> int:
    """Rough per-node working set: every group resident as a partial."""
    bq = query.bind(dist.schema)
    return NUM_GROUPS * (bq.projected_bytes + 8)


class TestTenPercentBudget:
    """The acceptance bar: exact answers at 10% of the working set."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_exact_at_ten_percent(self, algorithm, dist, query, baseline):
        budget = max(1, working_set_bytes(dist, query) // 10)
        out = run_algorithm(
            algorithm, dist, query,
            memory=MemoryPolicy(node_budget_bytes=budget),
        )
        assert_rows_close(out.rows, baseline[algorithm])

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_exact_at_minimum_viable_budget(
        self, algorithm, dist, query, baseline
    ):
        """One byte of budget: everything runs on the ladder's floor."""
        out = run_algorithm(
            algorithm, dist, query,
            memory=MemoryPolicy(node_budget_bytes=1),
        )
        assert_rows_close(out.rows, baseline[algorithm])

    def test_pressure_was_real(self, dist, query):
        """The 10% runs must actually exercise the ladder, not skate by."""
        budget = max(1, working_set_bytes(dist, query) // 10)
        out = run_algorithm(
            "two_phase", dist, query,
            memory=MemoryPolicy(node_budget_bytes=budget),
        )
        assert out.metrics.mem_ladder_rungs
        assert out.metrics.max_mem_high_water_bytes > 0


class TestGovernorOff:
    def test_none_policy_is_bit_identical(self, dist, query, baseline):
        for algorithm in ALGORITHMS:
            out = run_algorithm(algorithm, dist, query, memory=None)
            assert out.rows == baseline[algorithm]

    def test_ungoverned_metrics_stay_zero(self, dist, query):
        out = run_algorithm("repartitioning", dist, query)
        m = out.metrics
        assert m.total_mem_spill_bytes == 0
        assert m.total_mem_stall_seconds == 0.0
        assert m.max_mem_high_water_bytes == 0
        assert m.mem_ladder_rungs == {}


class TestSkewedData:
    def test_zipf_exact_under_pressure(self, query):
        zipf = generate_zipf(
            num_tuples=2000, num_groups=250, num_nodes=NUM_NODES,
            alpha=1.1, seed=23,
        )
        expected = run_algorithm("streaming_pre_aggregation", zipf,
                                 query).rows
        out = run_algorithm(
            "streaming_pre_aggregation", zipf, query,
            memory=MemoryPolicy(node_budget_bytes=1200),
        )
        assert_rows_close(out.rows, expected)


class TestBackpressureIsCharged:
    def test_mailbox_pressure_stalls_producers(self, dist, query,
                                               baseline):
        """Rung 1 must cost simulated time, not just count events."""
        base = run_algorithm("repartitioning", dist, query)
        out = run_algorithm(
            "repartitioning", dist, query,
            memory=MemoryPolicy(
                node_budget_bytes=10**9, mailbox_budget_bytes=512
            ),
        )
        assert_rows_close(out.rows, baseline["repartitioning"])
        assert out.metrics.total_mem_stall_seconds > 0
        assert out.metrics.mem_ladder_rungs.get("backpressure", 0) > 0
        assert out.elapsed_seconds > base.elapsed_seconds


class TestComposesWithFaults:
    def test_crash_recovery_under_memory_pressure(self, dist, query,
                                                  baseline):
        """The ladder and the fault layer compose: a node crash mid-run
        plus a tight budget still yields the exact answer, and the
        takeover attempt is governed too."""
        from repro.sim.faults import CrashFault, FaultPlan

        budget = max(1, working_set_bytes(dist, query) // 10)
        out = run_algorithm(
            "two_phase", dist, query,
            config=None,
            faults=FaultPlan(crashes=(CrashFault(2, after_tuples=200),)),
            memory=MemoryPolicy(node_budget_bytes=budget),
        )
        assert_rows_close(out.rows, baseline["two_phase"])
        assert out.metrics.crashed_nodes == [2]
        assert out.metrics.mem_ladder_rungs
        assert out.metrics.max_mem_high_water_bytes > 0


class TestBudgetProperty:
    @given(
        fraction=st.floats(min_value=0.02, max_value=1.0),
        algorithm=st.sampled_from(
            ["two_phase", "repartitioning", "adaptive_two_phase",
             "adaptive_repartitioning"]
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_budget_fraction_is_exact(
        self, fraction, algorithm, dist, query, baseline
    ):
        budget = max(1, int(working_set_bytes(dist, query) * fraction))
        out = run_algorithm(
            algorithm, dist, query,
            memory=MemoryPolicy(node_budget_bytes=budget),
        )
        assert rows_close(out.rows, baseline[algorithm])
