"""Heterogeneous hardware (CPU/disk skew) — the simulator extension.

The paper studies *data* skew; execution skew is the companion dimension
its successors cared about.  A slow node stretches its own local work
but not the network, and — unlike output skew — per-node algorithm
adaptivity cannot help: the slow node's scan is on the critical path no
matter which strategy it runs.
"""

import pytest

from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel.params import SystemParameters
from repro.parallel import reference_aggregate
from repro.sim.engine import Engine
from repro.sim.node import NodeContext
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


class TestEngineSpeedFactors:
    def test_slow_node_takes_longer(self):
        params = SystemParameters.paper_default().with_(num_nodes=2)
        engine = Engine(params, node_speed_factors=[1.0, 0.5])
        ctxs = [NodeContext(i, 2, params, engine) for i in range(2)]

        def prog(ctx):
            yield ctx.compute(1.0)
            yield ctx.read_pages(10)

        _results, metrics = engine.run([prog(ctxs[0]), prog(ctxs[1])])
        assert metrics.node(1).finish_time == pytest.approx(
            2 * metrics.node(0).finish_time
        )

    def test_fast_node_speeds_up(self):
        params = SystemParameters.paper_default().with_(num_nodes=1)
        engine = Engine(params, node_speed_factors=[4.0])
        ctx = NodeContext(0, 1, params, engine)

        def prog():
            yield ctx.compute(1.0)

        _res, metrics = engine.run([prog()])
        assert metrics.node(0).finish_time == pytest.approx(0.25)

    def test_invalid_factor_rejected(self):
        params = SystemParameters.paper_default().with_(num_nodes=1)
        with pytest.raises(ValueError, match="positive"):
            Engine(params, node_speed_factors=[0.0])

    def test_none_means_homogeneous(self):
        params = SystemParameters.paper_default().with_(num_nodes=1)
        assert Engine(params).node_speed_factors is None


class TestCpuSkewStudy:
    @pytest.fixture
    def dist(self):
        return generate_uniform(8000, 400, 4, seed=0)

    def test_correctness_unaffected(self, dist, sum_query):
        for name in ("two_phase", "repartitioning",
                     "adaptive_two_phase"):
            out = run_algorithm(
                name, dist, sum_query,
                node_speed_factors=[0.4, 1.0, 1.0, 1.0],
            )
            assert_rows_close(
                out.rows, reference_aggregate(dist, sum_query)
            )

    def test_slow_node_dominates_makespan(self, dist, sum_query):
        uniform = run_algorithm("two_phase", dist, sum_query)
        skewed = run_algorithm(
            "two_phase", dist, sum_query,
            node_speed_factors=[0.4, 1.0, 1.0, 1.0],
        )
        assert skewed.elapsed_seconds > 1.5 * uniform.elapsed_seconds

    def test_no_algorithm_escapes_cpu_skew(self, dist, sum_query):
        """Unlike output skew, execution skew hits every strategy: the
        adaptive algorithms cannot beat the traditional ones here."""
        factors = [0.4, 1.0, 1.0, 1.0]
        penalties = {}
        for name in ("two_phase", "repartitioning",
                     "adaptive_two_phase"):
            base = run_algorithm(name, dist, sum_query).elapsed_seconds
            slow = run_algorithm(
                name, dist, sum_query, node_speed_factors=factors
            ).elapsed_seconds
            penalties[name] = slow / base
        assert all(p > 1.3 for p in penalties.values()), penalties

    def test_finish_skew_visible_in_metrics(self, dist, sum_query):
        out = run_algorithm(
            "repartitioning", dist, sum_query,
            node_speed_factors=[0.4, 1.0, 1.0, 1.0],
        )
        busy = [n.busy_seconds for n in out.metrics.nodes]
        assert busy[0] > 1.8 * max(busy[1:])
        assert out.metrics.skew_ratio() > 1.4
