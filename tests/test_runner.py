"""Unit tests for the high-level runner and outcome object."""

import pytest

from repro.core.algorithms import SimConfig
from repro.core.runner import (
    ALGORITHMS,
    default_parameters,
    run_algorithm,
)
from repro.costmodel.params import NetworkKind
from repro.workloads.generator import generate_uniform


class TestDefaultParameters:
    def test_sized_to_relation(self, small_dist):
        p = default_parameters(small_dist)
        assert p.num_nodes == small_dist.num_nodes
        assert p.num_tuples == len(small_dist)
        assert p.tuple_bytes == 100

    def test_table_fraction(self):
        dist = generate_uniform(80_000, 10, 8, seed=0)
        p = default_parameters(dist)
        # 4% of 10_000 tuples/node, the paper's implementation ratio.
        assert p.hash_table_entries == 400

    def test_minimum_table_size(self):
        dist = generate_uniform(100, 10, 4, seed=0)
        assert default_parameters(dist).hash_table_entries == 16

    def test_network_override(self, small_dist):
        p = default_parameters(
            small_dist, network=NetworkKind.HIGH_BANDWIDTH
        )
        assert p.network is NetworkKind.HIGH_BANDWIDTH

    def test_default_is_ethernet_like(self, small_dist):
        p = default_parameters(small_dist)
        assert p.network is NetworkKind.LIMITED_BANDWIDTH
        assert p.block_bytes == 2048


class TestRunAlgorithm:
    def test_unknown_algorithm(self, small_dist, sum_query):
        with pytest.raises(KeyError, match="unknown algorithm"):
            run_algorithm("bogus", small_dist, sum_query)

    def test_registry_lists_all_eight(self):
        assert len(ALGORITHMS) == 8
        assert "streaming_pre_aggregation" in ALGORITHMS

    def test_mismatched_params_rejected(self, small_dist, sum_query):
        p = default_parameters(small_dist).with_(num_nodes=99)
        with pytest.raises(ValueError, match="num_nodes"):
            run_algorithm("two_phase", small_dist, sum_query, params=p)

    def test_config_object(self, small_dist, sum_query):
        cfg = SimConfig(pipeline=True)
        out = run_algorithm(
            "two_phase", small_dist, sum_query, config=cfg
        )
        assert out.metrics.node(0).tagged_seconds.get("scan_io", 0.0) == 0

    def test_config_and_overrides_conflict(self, small_dist, sum_query):
        with pytest.raises(ValueError, match="not both"):
            run_algorithm(
                "two_phase",
                small_dist,
                sum_query,
                config=SimConfig(),
                pipeline=True,
            )

    def test_pipeline_override_drops_io(self, small_dist, sum_query):
        full = run_algorithm("two_phase", small_dist, sum_query)
        pipe = run_algorithm(
            "two_phase", small_dist, sum_query, pipeline=True
        )
        assert (
            pipe.metrics.total_io_seconds < full.metrics.total_io_seconds
        )

    def test_outcome_fields(self, small_dist, sum_query):
        out = run_algorithm("two_phase", small_dist, sum_query)
        assert out.algorithm == "two_phase"
        assert out.num_groups == 16
        assert len(out.per_node_rows) == 4
        assert out.metrics.num_nodes == 4

    def test_metrics_account_tuples(self, small_dist, sum_query):
        out = run_algorithm("repartitioning", small_dist, sum_query)
        assert out.metrics.total_messages > 0
        assert out.metrics.total_bytes_sent > 0

    def test_makespan_equals_elapsed(self, small_dist, sum_query):
        out = run_algorithm("two_phase", small_dist, sum_query)
        assert out.elapsed_seconds == out.metrics.makespan


class TestMetricsShape:
    def test_repartitioning_ships_more_bytes_than_two_phase_low_s(
        self, sum_query
    ):
        """At low selectivity 2P ships tiny partials, Rep ships everything."""
        dist = generate_uniform(8000, 8, 4, seed=0)
        rep = run_algorithm("repartitioning", dist, sum_query)
        tp = run_algorithm("two_phase", dist, sum_query)
        assert rep.metrics.total_bytes_sent > 10 * tp.metrics.total_bytes_sent

    def test_two_phase_ships_more_at_high_s(self, sum_query):
        """At S=0.5 2P ships ~input-sized partials twice-processed; Rep
        ships the input once: bytes comparable, 2P CPU higher."""
        dist = generate_uniform(8000, 4000, 4, seed=0)
        rep = run_algorithm("repartitioning", dist, sum_query)
        tp = run_algorithm("two_phase", dist, sum_query)
        assert tp.metrics.total_cpu_seconds > rep.metrics.total_cpu_seconds

    def test_skew_ratio_balanced_uniform(self, sum_query):
        dist = generate_uniform(8000, 64, 4, seed=0)
        out = run_algorithm("two_phase", dist, sum_query)
        assert out.metrics.skew_ratio() < 1.2

    def test_network_busy_only_with_traffic(self, sum_query):
        dist = generate_uniform(1000, 4, 1, seed=0)
        out = run_algorithm("two_phase", dist, sum_query)
        assert out.metrics.network_busy_seconds == 0.0
