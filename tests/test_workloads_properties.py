"""Property tests for the workload generators.

The figures sweep exact group counts, so the generators' cardinality
guarantees are hard requirements, not statistical tendencies.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.workloads.generator import (
    generate_uniform,
    generate_zipf,
    selectivity_to_groups,
)
from repro.workloads.skew import generate_input_skew, generate_output_skew

sizes = st.integers(min_value=2, max_value=400)
node_counts = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2**31)


@given(sizes, node_counts, seeds, st.data())
@settings(max_examples=60, deadline=None)
def test_uniform_exact_group_count(num_tuples, nodes, seed, data):
    groups = data.draw(st.integers(min_value=1, max_value=num_tuples))
    dist = generate_uniform(num_tuples, groups, nodes, seed=seed)
    keys = {row[0] for row in dist.all_rows()}
    assert keys == set(range(groups))
    assert len(dist) == num_tuples


@given(sizes, node_counts, seeds, st.data())
@settings(max_examples=40, deadline=None)
def test_uniform_frequencies_balanced(num_tuples, nodes, seed, data):
    groups = data.draw(st.integers(min_value=1, max_value=num_tuples))
    dist = generate_uniform(num_tuples, groups, nodes, seed=seed)
    counts = Counter(row[0] for row in dist.all_rows())
    assert max(counts.values()) - min(counts.values()) <= 1


@given(sizes, node_counts, seeds, st.data())
@settings(max_examples=40, deadline=None)
def test_zipf_exact_group_count(num_tuples, nodes, seed, data):
    groups = data.draw(st.integers(min_value=1, max_value=num_tuples))
    dist = generate_zipf(num_tuples, groups, nodes, seed=seed)
    assert len({row[0] for row in dist.all_rows()}) == groups
    assert len(dist) == num_tuples


@given(
    st.integers(min_value=100, max_value=2000),
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=1.0, max_value=8.0),
    seeds,
)
@settings(max_examples=40, deadline=None)
def test_input_skew_conserves_tuples(num_tuples, nodes, factor, seed):
    dist = generate_input_skew(
        num_tuples, min(10, num_tuples), nodes,
        skew_factor=factor, seed=seed,
    )
    assert len(dist) == num_tuples
    sizes_per_node = dist.tuples_per_node()
    assert all(s >= 0 for s in sizes_per_node)
    if factor > 1.5 and nodes > 1:
        assert sizes_per_node[0] >= max(sizes_per_node[1:])


@given(
    st.integers(min_value=200, max_value=2000),
    st.integers(min_value=12, max_value=60),
    seeds,
)
@settings(max_examples=40, deadline=None)
def test_output_skew_invariants(num_tuples, groups, seed):
    dist = generate_output_skew(
        num_tuples, groups, num_nodes=8, seed=seed
    )
    # Definitionally: equal tuples per node, exact total group count,
    # single-group nodes hold exactly their own key.
    per_node = dist.tuples_per_node()
    assert max(per_node) - min(per_node) <= 1
    assert len({row[0] for row in dist.all_rows()}) == groups
    for node in range(4):
        assert {r[0] for r in dist.fragment(node).relation.rows} == {node}


@given(
    st.floats(min_value=1e-9, max_value=1.0),
    st.integers(min_value=1, max_value=10**7),
)
@settings(max_examples=80)
def test_selectivity_to_groups_in_range(selectivity, num_tuples):
    groups = selectivity_to_groups(selectivity, num_tuples)
    assert 1 <= groups <= num_tuples or groups == 1
    # Round-tripping through the induced selectivity is stable.
    assert selectivity_to_groups(groups / num_tuples, num_tuples) == groups
