"""End-to-end SQL execution, on the local engine and the cluster."""

import pytest

from repro.parallel import reference_aggregate
from repro.sql import parse_query, run_sql
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_uniform
from repro.workloads.tpcd import (
    generate_lineitem,
    q1_pricing_summary,
    q_distinct_orders,
)

from tests.conftest import assert_rows_close


@pytest.fixture
def relation():
    schema = Schema(
        [Column("k", "int"), Column("v", "float"), Column("tag", "str")]
    )
    rows = [
        (1, 10.0, "a"),
        (2, 20.0, "b"),
        (1, 30.0, "a"),
        (2, 5.0, "b"),
        (3, 7.0, "c"),
    ]
    return Relation(schema, rows)


class TestLocalExecution:
    def test_group_by_sum(self, relation):
        result = run_sql(
            "SELECT k, SUM(v) AS total FROM r GROUP BY k", relation
        )
        assert sorted(result.rows) == [
            (1, 40.0), (2, 25.0), (3, 7.0),
        ]

    def test_where_clause(self, relation):
        result = run_sql(
            "SELECT k, COUNT(*) AS n FROM r WHERE v >= 10 GROUP BY k",
            relation,
        )
        assert sorted(result.rows) == [(1, 2), (2, 1)]

    def test_having_clause(self, relation):
        result = run_sql(
            "SELECT k, COUNT(*) AS n FROM r GROUP BY k HAVING n >= 2",
            relation,
        )
        assert sorted(result.rows) == [(1, 2), (2, 2)]

    def test_string_predicate(self, relation):
        result = run_sql(
            "SELECT COUNT(*) FROM r WHERE tag = 'a'", relation
        )
        assert result.rows == [(2,)]

    def test_select_distinct(self, relation):
        result = run_sql("SELECT DISTINCT tag FROM r", relation)
        assert sorted(r[0] for r in result.rows) == ["a", "b", "c"]

    def test_output_schema_names(self, relation):
        result = run_sql(
            "SELECT k, AVG(v) AS mean FROM r GROUP BY k", relation
        )
        assert result.schema.names() == ["k", "mean"]

    def test_type_error_for_bad_data(self):
        with pytest.raises(TypeError):
            run_sql("SELECT COUNT(*) FROM r", [1, 2, 3])


class TestClusterExecution:
    def test_runs_on_simulated_cluster(self, sum_query):
        dist = generate_uniform(2000, 30, 4, seed=0)
        outcome = run_sql(
            "SELECT gkey, SUM(val) FROM r GROUP BY gkey",
            dist,
            algorithm="two_phase",
        )
        assert outcome.algorithm == "two_phase"
        assert_rows_close(
            outcome.rows, reference_aggregate(dist, sum_query)
        )

    def test_default_algorithm_is_adaptive(self):
        dist = generate_uniform(1000, 10, 2, seed=1)
        outcome = run_sql(
            "SELECT gkey, COUNT(*) FROM r GROUP BY gkey", dist
        )
        assert outcome.algorithm == "adaptive_two_phase"

    def test_kwargs_forwarded(self):
        dist = generate_uniform(1000, 10, 2, seed=2)
        outcome = run_sql(
            "SELECT gkey, COUNT(*) FROM r GROUP BY gkey",
            dist,
            pipeline=True,
        )
        assert outcome.metrics.node(0).tagged_seconds.get(
            "scan_io", 0.0
        ) == 0


class TestStatisticalAggregates:
    def test_var_and_stddev_via_sql(self):
        dist = generate_uniform(2000, 20, 4, seed=5)
        outcome = run_sql(
            "SELECT gkey, VAR(val) AS v, STDDEV(val) AS s "
            "FROM r GROUP BY gkey",
            dist,
        )
        _t, query = parse_query(
            "SELECT gkey, VAR(val) AS v, STDDEV(val) AS s "
            "FROM r GROUP BY gkey"
        )
        assert_rows_close(
            outcome.rows, reference_aggregate(dist, query), tol=1e-6
        )
        for row in outcome.rows:
            assert row[2] == pytest.approx(row[1] ** 0.5)

    def test_count_distinct_via_sql(self):
        dist = generate_uniform(1000, 10, 2, seed=6)
        outcome = run_sql(
            "SELECT gkey, COUNT(DISTINCT val) FROM r GROUP BY gkey",
            dist,
        )
        assert outcome.num_groups == 10


class TestTpcdEquivalence:
    """The canned TPC-D queries expressed as SQL give identical plans."""

    def test_q1_pricing_summary(self):
        dist = generate_lineitem(1500, 4, seed=0)
        sql = (
            "SELECT returnflag, linestatus, "
            "SUM(quantity) AS sum_qty, "
            "SUM(extendedprice) AS sum_base_price, "
            "AVG(quantity) AS avg_qty, "
            "AVG(extendedprice) AS avg_price, "
            "AVG(discount) AS avg_disc, "
            "COUNT(*) AS count_order "
            "FROM lineitem GROUP BY returnflag, linestatus"
        )
        _t, query = parse_query(sql)
        assert_rows_close(
            reference_aggregate(dist, query),
            reference_aggregate(dist, q1_pricing_summary()),
        )

    def test_distinct_orders(self):
        dist = generate_lineitem(1500, 4, seed=0)
        _t, query = parse_query(
            "SELECT orderkey, COUNT(*) AS lines FROM lineitem "
            "GROUP BY orderkey"
        )
        assert_rows_close(
            reference_aggregate(dist, query),
            reference_aggregate(dist, q_distinct_orders()),
        )

    def test_q1_with_predicate_runs_everywhere(self):
        dist = generate_lineitem(1500, 4, seed=1)
        sql = (
            "SELECT returnflag, COUNT(*) AS n FROM lineitem "
            "WHERE quantity > 25 AND discount < 0.05 "
            "GROUP BY returnflag HAVING n > 10"
        )
        _t, query = parse_query(sql)
        expected = reference_aggregate(dist, query)
        outcome = run_sql(sql, dist, algorithm="repartitioning")
        assert_rows_close(outcome.rows, expected)
