"""Small-scale unit tests of the scaling and validation runners."""

import pytest

from repro.bench import scaling, validation


class TestSimScaleup:
    def test_columns_and_nodes(self):
        result = scaling.sim_scaleup(tuples_per_node=800,
                                     selectivity=0.25)
        assert result.column("num_nodes") == list(scaling.NODE_COUNTS)
        assert "adaptive_two_phase" in result.columns

    def test_baseline_normalized(self):
        result = scaling.sim_scaleup(tuples_per_node=800,
                                     selectivity=0.25)
        for name in scaling.SCALE_ALGORITHMS:
            assert result.column(name)[0] == pytest.approx(1.0)

    def test_scaleup_values_bounded(self):
        result = scaling.sim_scaleup(tuples_per_node=800,
                                     selectivity=0.1)
        for name in scaling.SCALE_ALGORITHMS:
            for value in result.column(name):
                assert 0 < value <= 1.6  # nothing super-scales wildly


class TestSimSpeedup:
    def test_speedup_monotone_for_rep(self):
        result = scaling.sim_speedup(num_tuples=8000, num_groups=2000)
        series = result.column("repartitioning")
        assert series[0] == pytest.approx(1.0)
        assert series[-1] > series[0]

    def test_speedup_below_ideal(self):
        result = scaling.sim_speedup(num_tuples=8000, num_groups=2000)
        node_counts = result.column("num_nodes")
        for name in scaling.SCALE_ALGORITHMS:
            for n, value in zip(node_counts, result.column(name)):
                ideal = n / node_counts[0]
                assert value <= ideal * 1.1, (name, n)


class TestValidation:
    def test_spearman_bounds(self):
        assert validation._spearman([0, 1, 2], [0, 1, 2]) == 1.0
        assert validation._spearman([0, 1, 2], [2, 1, 0]) == -1.0
        assert validation._spearman([0], [0]) == 1.0

    def test_small_scale_table(self):
        result = validation.model_vs_simulator(
            num_tuples=4000, num_nodes=4
        )
        assert len(result.rows) == 4  # 6400-group point exceeds 4000/2
        for regret in result.column("regret"):
            assert regret >= 1.0  # by definition
        for rho in result.column("rank_correlation"):
            assert -1.0 <= rho <= 1.0

    def test_high_selectivity_low_regret(self):
        """At toy scale the top contenders are near-ties (Rep vs A-2P,
        which wraps Rep there), so assert low regret rather than exact
        winner-name agreement; the full-scale bench_validation.py pins
        the exact winner."""
        result = validation.model_vs_simulator(
            num_tuples=4000, num_nodes=4
        )
        assert result.rows[-1][3] <= 1.1


class TestScaleCli:
    def test_scaleup_command(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["scale", "--mode", "scaleup", "--tuples-per-node", "600"],
            out=out,
        )
        assert code == 0
        assert "sim_scaleup" in out.getvalue()

    def test_speedup_command(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["scale", "--mode", "speedup", "--tuples", "4000",
             "--groups", "1000"],
            out=out,
        )
        assert code == 0
        assert "sim_speedup" in out.getvalue()
