"""Tests for the command-line interface (driven in-process)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRun:
    def test_run_with_verify(self):
        code, text = run_cli(
            "run",
            "--algorithm", "two_phase",
            "--tuples", "2000",
            "--groups", "50",
            "--nodes", "4",
            "--verify",
        )
        assert code == 0
        assert "two_phase" in text
        assert "verified against reference: OK" in text

    def test_show_rows(self):
        code, text = run_cli(
            "run",
            "--algorithm", "repartitioning",
            "--tuples", "1000",
            "--groups", "5",
            "--nodes", "2",
            "--show-rows", "3",
        )
        assert code == 0
        assert text.count("(") >= 3

    def test_custom_aggregates(self):
        code, text = run_cli(
            "run",
            "--algorithm", "two_phase",
            "--tuples", "1000",
            "--groups", "5",
            "--nodes", "2",
            "--agg", "avg:val",
            "--agg", "count",
            "--verify",
        )
        assert code == 0
        assert "OK" in text

    def test_bad_aggregate_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(
                "run", "--algorithm", "two_phase", "--agg", "median:val"
            )

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "--algorithm", "quantum")

    def test_workload_variants(self):
        for workload in ("zipf", "output-skew", "input-skew"):
            code, _ = run_cli(
                "run",
                "--algorithm", "adaptive_two_phase",
                "--tuples", "2000",
                "--groups", "100",
                "--nodes", "8",
                "--workload", workload,
            )
            assert code == 0, workload

    def test_timeline_flag(self):
        code, text = run_cli(
            "run",
            "--algorithm", "two_phase",
            "--tuples", "1000",
            "--groups", "10",
            "--nodes", "2",
            "--timeline",
        )
        assert code == 0
        assert "node  0 |" in text
        assert ".=idle/wait" in text

    def test_pipeline_and_network_flags(self):
        code, _ = run_cli(
            "run",
            "--algorithm", "two_phase",
            "--tuples", "1000",
            "--groups", "10",
            "--nodes", "2",
            "--network", "fast",
            "--pipeline",
        )
        assert code == 0


class TestRunFaults:
    def test_sim_substrate_accepts_fault_plan(self):
        code, text = run_cli(
            "run",
            "--algorithm", "two_phase",
            "--tuples", "2000", "--groups", "50", "--nodes", "4",
            "--faults", "seed=42,kill=2@250,slow=1x2.0,loss=0.1",
            "--verify",
        )
        assert code == 0
        assert "verified against reference: OK" in text

    def test_algorithm_defaults_to_adaptive(self):
        code, text = run_cli(
            "run", "--tuples", "1000", "--groups", "20", "--nodes", "2"
        )
        assert code == 0
        assert "adaptive_two_phase" in text

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("seed=1,bogus=3", "unknown --faults key"),
            ("seed", "expected key=value"),
            ("stall=0xnope", "expected NODExNUMBER"),
            ("kill=1,kill=1", "bad --faults plan"),
            ("loss=2.0", "bad --faults plan"),
        ],
    )
    def test_bad_fault_specs_rejected(self, spec, fragment):
        code, text = run_cli(
            "run", "--tuples", "400", "--nodes", "2", "--faults", spec
        )
        assert code == 2
        assert fragment in text


class TestRunMp:
    def test_mp_substrate_runs_and_verifies(self):
        code, text = run_cli(
            "run",
            "--substrate", "mp",
            "--tuples", "2000", "--groups", "50", "--nodes", "4",
            "--processes", "2",
            "--verify",
        )
        assert code == 0
        assert "mp[pool]" in text
        assert "verified against reference: OK" in text

    def test_mp_substrate_with_fault_plan(self):
        code, text = run_cli(
            "run",
            "--substrate", "mp",
            "--tuples", "2400", "--groups", "60", "--nodes", "4",
            "--processes", "2",
            "--faults", "seed=1,kill=3,slow=2x6.0,loss=0.3",
            "--speculate",
            "--verify",
        )
        assert code == 0
        assert "verified against reference: OK" in text
        assert "injected=" in text

    def test_mp_rejects_spawn_with_faults(self):
        code, text = run_cli(
            "run",
            "--substrate", "mp", "--strategy", "spawn",
            "--tuples", "400", "--groups", "20", "--nodes", "2",
            "--faults", "seed=1,kill=1",
        )
        assert code == 2
        assert "strategy='pool'" in text

    @pytest.mark.parametrize("flag", ["--timeline", "--save-run"])
    def test_mp_rejects_simulator_only_flags(self, flag, tmp_path):
        argv = [
            "run", "--substrate", "mp", "--tuples", "400", "--nodes", "2",
            flag,
        ]
        if flag == "--save-run":
            argv.append(str(tmp_path / "run.json"))
        code, text = run_cli(*argv)
        assert code == 2
        assert "--substrate sim" in text


class TestSql:
    def test_sql_on_generated_workload(self):
        code, text = run_cli(
            "sql",
            "SELECT gkey, SUM(val) AS total FROM r GROUP BY gkey",
            "--tuples", "1000",
            "--groups", "5",
            "--nodes", "2",
        )
        assert code == 0
        assert "5 groups" in text

    def test_sql_algorithm_choice(self):
        code, text = run_cli(
            "sql",
            "SELECT COUNT(*) FROM r",
            "--algorithm", "repartitioning",
            "--tuples", "500",
            "--groups", "5",
            "--nodes", "2",
        )
        assert code == 0
        assert "repartitioning: 1 groups" in text

    def test_sql_row_preview_truncated(self):
        code, text = run_cli(
            "sql",
            "SELECT gkey, COUNT(*) FROM r GROUP BY gkey",
            "--tuples", "1000",
            "--groups", "50",
            "--nodes", "2",
            "--show-rows", "3",
        )
        assert code == 0
        assert "... 47 more rows" in text

    def test_sql_from_saved_data(self, tmp_path):
        from repro.storage.io import save_distributed
        from repro.workloads.generator import generate_uniform

        dist = generate_uniform(600, 6, 3, seed=1)
        save_distributed(dist, str(tmp_path / "d"))
        code, text = run_cli(
            "sql",
            "SELECT gkey, MAX(val) FROM r GROUP BY gkey",
            "--data-dir", str(tmp_path / "d"),
        )
        assert code == 0
        assert "6 groups" in text


class TestCompare:
    def test_lists_all_algorithms(self):
        code, text = run_cli(
            "compare",
            "--tuples", "1500",
            "--groups", "30",
            "--nodes", "3",
        )
        assert code == 0
        for name in (
            "two_phase",
            "repartitioning",
            "sampling",
            "adaptive_two_phase",
            "adaptive_repartitioning",
            "centralized_two_phase",
            "optimized_two_phase",
            "streaming_pre_aggregation",
        ):
            assert name in text


class TestFigure:
    def test_table1(self):
        code, text = run_cli("figure", "--name", "table1")
        assert code == 0
        assert "mips" in text

    def test_fig3_prints_series(self):
        code, text = run_cli("figure", "--name", "fig3")
        assert code == 0
        assert "adaptive_two_phase" in text
        assert "selectivity" in text

    def test_writes_results(self, tmp_path):
        code, text = run_cli(
            "figure", "--name", "fig1", "--results-dir", str(tmp_path)
        )
        assert code == 0
        assert (tmp_path / "fig1.csv").exists()
        assert (tmp_path / "fig1.txt").exists()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("figure", "--name", "fig99")


class TestParams:
    def test_paper_preset(self):
        code, text = run_cli("params")
        assert code == 0
        assert "num_nodes" in text and "32" in text

    def test_implementation_preset(self):
        code, text = run_cli("params", "--preset", "implementation")
        assert code == 0
        assert "2000000" in text


class TestExplain:
    def test_fresh_run_shows_judged_decision(self):
        code, text = run_cli(
            "explain",
            "--algorithm", "sampling",
            "--tuples", "8000",
            "--groups", "2000",
            "--nodes", "4",
        )
        assert code == 0
        assert "sampling_decision" in text
        assert "estimate_rel_error" in text
        assert "verdict" in text

    def test_drift_table_appended(self):
        code, text = run_cli(
            "explain",
            "--algorithm", "sampling",
            "--tuples", "4000",
            "--groups", "100",
            "--nodes", "4",
            "--drift",
        )
        assert code == 0
        assert "== drift: sampling (sim" in text
        assert "base_io" in text

    def test_drift_rejected_without_cost_model(self):
        code, text = run_cli(
            "explain",
            "--algorithm", "streaming_pre_aggregation",
            "--tuples", "2000",
            "--groups", "50",
            "--nodes", "2",
            "--drift",
        )
        assert code == 2
        assert text.startswith("error:")

    def test_requires_file_or_algorithm(self):
        code, text = run_cli("explain")
        assert code == 2
        assert text.startswith("error:")

    def test_save_then_explain_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.json")
        code, text = run_cli(
            "run",
            "--algorithm", "sampling",
            "--tuples", "2000",
            "--groups", "50",
            "--nodes", "4",
            "--save-run", path,
        )
        assert code == 0
        assert path in text
        code, text = run_cli("explain", path)
        assert code == 0
        assert "sampling_decision" in text

    def test_missing_file_is_one_actionable_line(self):
        code, text = run_cli("explain", "/no/such/run.json")
        assert code == 2
        assert text.startswith("error:")
        assert "--save-run" in text  # tells the user how to make one
        assert "Traceback" not in text
        assert len(text.strip().splitlines()) == 1

    def test_corrupt_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json")
        code, text = run_cli("explain", str(bad))
        assert code == 2
        assert text.startswith("error:")
        assert "Traceback" not in text

    def test_wrong_schema_rejected(self, tmp_path):
        notrun = tmp_path / "notrun.json"
        notrun.write_text('{"schema": "repro-bench/1"}')
        code, text = run_cli("explain", str(notrun))
        assert code == 2
        assert "not a valid repro-run/1 artifact" in text

    def test_directory_rejected(self, tmp_path):
        code, text = run_cli("explain", str(tmp_path))
        assert code == 2
        assert "directory" in text


class TestTraceErrors:
    def test_unwritable_out_is_one_line_error(self, tmp_path):
        code, text = run_cli(
            "trace",
            "--algorithm", "two_phase",
            "--tuples", "1000",
            "--groups", "10",
            "--nodes", "2",
            "--out", str(tmp_path / "missing_dir" / "trace.json"),
        )
        assert code == 2
        assert text.startswith("error:")
        assert "Traceback" not in text


class TestBenchGate:
    def _seed(self, tmp_path):
        import json as _json

        doc = {
            "schema": "repro-bench/1",
            "name": "demo",
            "tests": [],
            "figures": [
                {
                    "figure": "fig_demo",
                    "columns": ["selectivity", "two_phase"],
                    "rows": [[0.01, 10.0]],
                }
            ],
            "metrics": {
                "tests": 0, "failed": 0, "figures": 1,
                "wall_seconds_total": 1.0,
            },
        }
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_demo.json").write_text(_json.dumps(doc))
        code, text = run_cli(
            "bench", "baseline",
            "--results-dir", str(results),
            "--baseline", str(results / "baseline"),
            "--names", "demo",
        )
        assert code == 0, text
        return results, doc

    def test_clean_compare_exits_zero(self, tmp_path):
        results, _ = self._seed(tmp_path)
        code, text = run_cli(
            "bench", "compare",
            "--results-dir", str(results),
            "--baseline", str(results / "baseline"),
        )
        assert code == 0
        assert "no regression beyond threshold" in text

    def test_injected_regression_exits_one(self, tmp_path):
        import json as _json

        results, doc = self._seed(tmp_path)
        doc["figures"][0]["rows"] = [[0.01, 15.0]]  # +50%
        (results / "BENCH_demo.json").write_text(_json.dumps(doc))
        delta_path = tmp_path / "delta.txt"
        code, text = run_cli(
            "bench", "compare",
            "--results-dir", str(results),
            "--baseline", str(results / "baseline"),
            "--out", str(delta_path),
        )
        assert code == 1
        assert "regression" in text
        # The delta artifact is written even when the gate fails.
        assert "regression" in delta_path.read_text()

    def test_missing_artifact_exits_one(self, tmp_path):
        results, _ = self._seed(tmp_path)
        (results / "BENCH_demo.json").unlink()
        code, text = run_cli(
            "bench", "compare",
            "--results-dir", str(results),
            "--baseline", str(results / "baseline"),
        )
        assert code == 1
        assert "missing" in text

    def test_missing_baseline_dir_is_usage_error(self, tmp_path):
        code, text = run_cli(
            "bench", "compare",
            "--results-dir", str(tmp_path),
            "--baseline", str(tmp_path / "nowhere"),
        )
        assert code == 2
        assert text.startswith("error:")

    def test_record_appends_trajectory(self, tmp_path):
        results, _ = self._seed(tmp_path)
        code, _ = run_cli(
            "bench", "compare",
            "--results-dir", str(results),
            "--baseline", str(results / "baseline"),
            "--record", "--label", "pr-check",
        )
        assert code == 0
        lines = (
            (results / "baseline" / "TRAJECTORY.jsonl")
            .read_text().splitlines()
        )
        assert len(lines) == 2  # seed + the recorded compare


class TestPlan:
    def test_no_estimate(self):
        code, text = run_cli("plan")
        assert code == 0
        assert "adaptive_two_phase" in text

    def test_estimate(self):
        code, text = run_cli("plan", "--groups-estimate", "999999")
        assert code == 0
        assert "adaptive_repartitioning" in text
        assert "estimated:" in text

    def test_duplicate_elimination_flag(self):
        code, text = run_cli("plan", "--duplicate-elimination")
        assert code == 0
        assert "adaptive_repartitioning" in text
