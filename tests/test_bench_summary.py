"""Tests for the results-summary generator."""

import os

import pytest

from repro.bench.harness import FigureResult, write_results
from repro.bench.summary import build_summary, write_summary


@pytest.fixture
def results_dir(tmp_path):
    fig = FigureResult("fig1", "t", ["selectivity", "cost"])
    fig.add_row(1e-6, 15.77)
    fig.add_row(0.5, 27.24)
    write_results(fig, str(tmp_path))
    extra = FigureResult("zz_custom", "t", ["x", "winner"])
    extra.add_row(1, "two_phase")
    write_results(extra, str(tmp_path))
    return str(tmp_path)


class TestBuildSummary:
    def test_contains_every_figure(self, results_dir):
        text = build_summary(results_dir)
        assert "## fig1" in text
        assert "## zz_custom" in text

    def test_tables_rendered(self, results_dir):
        text = build_summary(results_dir)
        assert "| selectivity | cost |" in text
        assert "| 1.000e-06 | 15.7700 |" in text

    def test_non_numeric_cells_pass_through(self, results_dir):
        assert "two_phase" in build_summary(results_dir)

    def test_known_figures_ordered_first(self, results_dir):
        text = build_summary(results_dir)
        assert text.index("## fig1") < text.index("## zz_custom")

    def test_integers_render_without_decimals(self, results_dir):
        assert "| 1 | two_phase |" in build_summary(results_dir)


class TestWriteSummary:
    def test_writes_summary_md(self, results_dir):
        path = write_summary(results_dir)
        assert os.path.exists(path)
        assert path.endswith("SUMMARY.md")
        with open(path) as handle:
            assert "# Regenerated results" in handle.read()

    def test_custom_out_path(self, results_dir, tmp_path):
        out = str(tmp_path / "report.md")
        assert write_summary(results_dir, out) == out
        assert os.path.exists(out)
