"""Tests for the crossover finder and hardware sensitivity sweeps."""

import pytest

from repro.costmodel.crossover import (
    cost_gap,
    crossover_sensitivity,
    find_crossover,
)
from repro.costmodel.params import NetworkKind, SystemParameters


@pytest.fixture(scope="module")
def params():
    return SystemParameters.paper_default()


class TestFindCrossover:
    def test_crossover_exists_on_fast_network(self, params):
        s_star = find_crossover(params)
        assert s_star is not None
        assert 1e-6 < s_star < 0.5

    def test_gap_signs_bracket_the_crossover(self, params):
        s_star = find_crossover(params)
        assert cost_gap(params, s_star * 0.5) < 0   # 2P wins below
        assert cost_gap(params, min(0.5, s_star * 2)) > 0

    def test_crossover_near_memory_overflow_point(self, params):
        """The paper's A-2P rationale: the crossover sits near where the
        local table would overflow, S ≈ M/|R| (S_l·|R_i| = M)."""
        s_star = find_crossover(params)
        overflow_s = params.hash_table_entries / params.num_tuples
        assert overflow_s / 10 < s_star < overflow_s * 10

    def test_slow_network_moves_crossover_right(self, params):
        slow = params.with_(network=NetworkKind.LIMITED_BANDWIDTH)
        fast_star = find_crossover(params)
        slow_star = find_crossover(slow)
        assert slow_star is None or slow_star > 3 * fast_star

    def test_free_network_tiny_memory_early_crossover(self, params):
        """With an instant network and a one-entry table, Rep wins as
        soon as there are enough groups to feed most processors — but
        never below that: at one group Rep idles N−1 nodes while 2P
        still aggregates in parallel, so 2P always owns the scalar end."""
        extreme = params.with_(
            msg_latency_seconds=0.0,
            msg_protocol_instr=0.0,
            hash_table_entries=1,
        )
        s_star = find_crossover(extreme)
        assert s_star is not None
        # ~20 groups on 32 nodes: just past the utilization knee.
        assert s_star < 1e-5
        assert cost_gap(extreme, 1.0 / params.num_tuples) < 0


class TestSensitivity:
    def test_network_latency_sweep_monotone(self, params):
        sweep = crossover_sensitivity(
            params,
            "msg_latency_seconds",
            [0.0005, 0.002, 0.008, 0.032],
        )
        stars = [s for _v, s in sweep]
        numeric = [s for s in stars if s is not None]
        # Crossover moves right (or disappears) as the network slows.
        assert numeric == sorted(numeric)
        assert stars[0] is not None

    def test_memory_sweep_moves_crossover(self, params):
        sweep = crossover_sensitivity(
            params, "hash_table_entries", [1000, 10_000, 100_000]
        )
        stars = [s for _v, s in sweep if s is not None]
        # More memory keeps 2P viable longer: S* grows with M.
        assert stars == sorted(stars)
        assert stars[-1] > stars[0]

    def test_pairs_preserve_input_values(self, params):
        values = [0.001, 0.002]
        sweep = crossover_sensitivity(
            params, "msg_latency_seconds", values
        )
        assert [v for v, _s in sweep] == values
