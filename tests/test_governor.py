"""Unit tests for the memory governor's accounting tree and ladder."""

import pytest

from repro.resources import (
    RUNG_BACKPRESSURE,
    RUNG_NAMES,
    RUNG_RETRY,
    RUNG_SPILL,
    RUNG_SWITCH,
    MemoryExceededError,
    MemoryGovernor,
    MemoryPolicy,
    NodeLedger,
    SpillCapacityError,
    SpillDepthExceededError,
)


class TestMemoryPolicy:
    def test_defaults(self):
        policy = MemoryPolicy(node_budget_bytes=1000)
        assert policy.entry_bytes == 64
        assert policy.min_table_entries == 8
        assert policy.effective_mailbox_budget == 1000

    def test_mailbox_budget_override(self):
        policy = MemoryPolicy(node_budget_bytes=1000,
                              mailbox_budget_bytes=256)
        assert policy.effective_mailbox_budget == 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(node_budget_bytes=0),
            dict(node_budget_bytes=100, entry_bytes=0),
            dict(node_budget_bytes=100, stall_seconds=-1.0),
            dict(node_budget_bytes=100, min_table_entries=0),
            dict(node_budget_bytes=100, mailbox_budget_bytes=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MemoryPolicy(**kwargs)


class TestAccounting:
    def _ledger(self, budget=100, **kw):
        return NodeLedger(MemoryPolicy(node_budget_bytes=budget, **kw), 0)

    def test_try_charge_within_budget(self):
        ledger = self._ledger()
        account = ledger.open("op")
        assert account.try_charge(60)
        assert account.used == 60
        assert ledger.used == 60
        assert ledger.pressure_events == 0

    def test_try_charge_denial_is_pressure(self):
        ledger = self._ledger()
        account = ledger.open("op")
        assert account.try_charge(80)
        assert not account.try_charge(30)
        assert account.used == 80  # denial charges nothing
        assert ledger.pressure_events == 1

    def test_operators_share_the_node_budget(self):
        ledger = self._ledger()
        a = ledger.open("table")
        b = ledger.open("buffer")
        assert a.try_charge(70)
        assert not b.try_charge(40)
        assert b.try_charge(30)

    def test_force_charge_exceeds_budget(self):
        ledger = self._ledger()
        account = ledger.open("op")
        account.charge(150)
        assert ledger.used == 150
        assert ledger.high_water == 150
        assert account.high_water == 150

    def test_release_clamps_and_bubbles_up(self):
        ledger = self._ledger()
        account = ledger.open("op")
        account.charge(50)
        account.release(80)  # clamped to what was held
        assert account.used == 0
        assert ledger.used == 0
        assert ledger.high_water == 50

    def test_close_is_idempotent(self):
        ledger = self._ledger()
        account = ledger.open("op")
        account.charge(40)
        account.close()
        account.close()
        assert ledger.used == 0

    def test_negative_charge_rejected(self):
        account = self._ledger().open("op")
        with pytest.raises(ValueError):
            account.try_charge(-1)
        with pytest.raises(ValueError):
            account.charge(-1)

    def test_headroom(self):
        ledger = self._ledger()
        ledger.open("op").charge(130)
        assert ledger.headroom_bytes == 0

    def test_cap_entries(self):
        ledger = self._ledger(budget=640, entry_bytes=64)
        assert ledger.cap_entries(100) == 10  # budget caps
        assert ledger.cap_entries(3) == 8  # floor wins
        assert ledger.cap_entries(9) == 9  # request fits

    def test_ladder_notes(self):
        ledger = self._ledger()
        assert ledger.max_rung == 0
        ledger.note_rung(RUNG_BACKPRESSURE)
        ledger.note_rung(RUNG_SPILL)
        ledger.note_rung(RUNG_SPILL)
        ledger.note_spill(512)
        ledger.note_stall(0.25)
        assert ledger.max_rung == RUNG_SPILL
        assert ledger.ladder_rungs == {RUNG_BACKPRESSURE: 1, RUNG_SPILL: 2}
        assert ledger.spill_bytes == 512
        assert ledger.stall_seconds == 0.25


class TestGovernor:
    def test_one_ledger_per_node(self):
        gov = MemoryGovernor(MemoryPolicy(node_budget_bytes=100), 4)
        assert len(gov.nodes) == 4
        assert gov.node(2).node_id == 2
        assert gov.node(0) is not gov.node(1)

    def test_num_nodes_validated(self):
        with pytest.raises(ValueError):
            MemoryGovernor(MemoryPolicy(node_budget_bytes=100), 0)

    def test_totals_and_max_rung(self):
        gov = MemoryGovernor(MemoryPolicy(node_budget_bytes=100), 2)
        gov.node(0).note_spill(100)
        gov.node(1).note_spill(50)
        gov.node(1).note_stall(2.0)
        gov.node(1).note_rung(RUNG_SWITCH)
        assert gov.total_spill_bytes == 150
        assert gov.total_stall_seconds == 2.0
        assert gov.max_rung == RUNG_SWITCH

    def test_snapshot_shape(self):
        gov = MemoryGovernor(MemoryPolicy(node_budget_bytes=100), 2)
        account = gov.node(0).open("merge_table")
        account.charge(30)
        gov.node(0).note_rung(RUNG_SPILL)
        snap = gov.snapshot()
        assert snap["node_budget_bytes"] == 100
        node0 = snap["nodes"][0]
        assert node0["high_water_bytes"] == 30
        assert node0["ladder_rungs"] == {"spill": 1}
        assert node0["operators"][0]["name"] == "merge_table"

    def test_rung_names_cover_all_rungs(self):
        assert set(RUNG_NAMES) == {
            RUNG_BACKPRESSURE, RUNG_SPILL, RUNG_SWITCH, RUNG_RETRY
        }
        assert len(set(RUNG_NAMES.values())) == 4


class TestErrors:
    def test_memory_exceeded_carries_high_water(self):
        err = MemoryExceededError("local", 1000, 960, requested_bytes=64)
        assert err.operator == "local"
        assert err.budget_bytes == 1000
        assert err.high_water_bytes == 960
        assert err.requested_bytes == 64
        assert "960" in str(err)

    def test_spill_depth_reports_skew(self):
        err = SpillDepthExceededError(
            depth=32, largest_bucket_items=99, total_spilled_items=100,
            max_entries=4,
        )
        assert err.bucket_share == pytest.approx(0.99)
        assert "skew" in str(err)

    def test_spill_capacity_attrs(self):
        err = SpillCapacityError(4096, 5000)
        assert err.max_bytes == 4096
        assert err.attempted_bytes == 5000
