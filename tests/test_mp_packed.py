"""Packed columnar partials and the mid-run adaptive controller.

PR-10 completed the packed wire format: string MIN/MAX ships per-group
winner *dictionary codes* plus the fragment dictionary (merged through a
union-dictionary LUT) and COUNT(DISTINCT) ships sorted-unique
``(group, value)`` pair arrays (folded with one structured unique) — no
``_unpack_packed`` fallback remains on those shapes.  These tests pin
that path three ways:

* **Golden digests** — the additive ``packed_merge`` section of
  ``tests/golden/block_parity.json`` (written once by
  ``tests/golden/make_packed_merge.py``, never regenerated) pins the
  exact result rows every strategy must reproduce.

* **Hypothesis round-trips** — arbitrary strings (embedded NULs,
  non-ASCII, empty), empty fragments, groups missing from some
  fragments, and the single-fragment degenerate case: the packed global
  merge must equal the per-row reference bit for bit.

* **The adaptive controller** — ``strategy="auto"`` re-samples after
  the first K completed fragments, switches pool <-> global when the
  observed cardinality flips the cost model, and both decisions carry
  post-hoc verdicts; plus the stratified-sampling regression (a
  front-loaded table must not lock in the wrong strategy from
  fragment 0 alone).
"""

import json
import pathlib

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.costmodel.globalhash import choose_mp_strategy
from repro.obs.decisions import (
    MP_STRATEGY_CHOICE,
    MP_STRATEGY_RESAMPLE,
    DecisionLedger,
    VERDICT_CORRECT,
)
from repro.parallel.mp_executor import (
    _AUTO_SAMPLE_ROWS,
    _auto_params,
    multiprocessing_aggregate,
    set_columnar_shipping,
    shutdown_worker_pool,
)
from repro.storage.columnblock import ColumnBlock, have_numpy
from repro.storage.relation import BlockRelation, DistributedRelation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_zipf

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="the packed columnar path requires numpy"
)

_GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden" / "block_parity.json")
    .read_text()
)


@pytest.fixture(autouse=True)
def _columnar_default():
    yield
    set_columnar_shipping(True)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _block_dist(schema, parts):
    """Fragments born columnar, so the in-process global path packs."""
    return DistributedRelation(
        schema,
        [
            BlockRelation(schema, ColumnBlock.from_rows(schema, part))
            for part in parts
        ],
    )


# -- golden digests (additive, never regenerated) -----------------------------


def _load_packed_workload(name):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "make_packed_merge",
        pathlib.Path(__file__).parent / "golden" / "make_packed_merge.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.WORKLOADS[name]()


def _digest(rows):
    from tests.test_block_parity import _GEN

    return _GEN.rows_digest(rows)


class TestPackedMergeGolden:
    @pytest.mark.parametrize("strategy", ["pool", "spawn", "global", "rep"])
    @pytest.mark.parametrize("workload", sorted(_GOLDEN["packed_merge"]))
    def test_strategy_matches_golden(self, workload, strategy):
        dist, query = _load_packed_workload(workload)
        want = _GOLDEN["packed_merge"][workload]
        rows = multiprocessing_aggregate(dist, query, 4, strategy=strategy)
        assert len(rows) == want["num_rows"]
        assert _digest(rows) == want["rows_sha256"]

    @pytest.mark.parametrize("workload", sorted(_GOLDEN["packed_merge"]))
    def test_in_process_matches_golden(self, workload):
        dist, query = _load_packed_workload(workload)
        want = _GOLDEN["packed_merge"][workload]
        for strategy in ("pool", "global", "rep", "auto"):
            rows = multiprocessing_aggregate(
                dist, query, 1, strategy=strategy
            )
            assert _digest(rows) == want["rows_sha256"]


# -- hypothesis round-trips for the packed payloads ---------------------------


_QUERY = AggregateQuery(
    ("k",),
    (
        AggregateSpec("min", "s"),
        AggregateSpec("max", "s"),
        AggregateSpec("count_distinct", "s"),
        AggregateSpec("count_distinct", "n"),
        AggregateSpec("count", None),
    ),
)
_SCHEMA = Schema(
    [Column("k", "str", 8), Column("s", "str", 8), Column("n", "int")]
)

# Small pools keyed to the failure modes: embedded/trailing NULs,
# non-ASCII (including astral plane), the empty string, and near-equal
# strings whose dictionary ranks must still order like Python's ``<``.
_KEYS = ["", "a", "a\x00", "\x00a", "é", "😀", "zz", "z"]
_VALS = ["", "b", "b\x00", "\x00", "ß", "😀x", "b\x00b", "aa", "ab"]

if HAVE_HYPOTHESIS:

    _row = st.tuples(
        st.sampled_from(_KEYS),
        st.sampled_from(_VALS),
        st.integers(min_value=-5, max_value=5),
    )

    class TestPackedRoundTripProperties:
        @settings(max_examples=40, deadline=None)
        @given(
            parts=st.lists(
                st.lists(_row, max_size=25), min_size=1, max_size=4
            )
        )
        def test_packed_global_equals_per_row(self, parts):
            """Arbitrary fragments — including empty ones and groups
            missing from some fragments — merge identically packed and
            per-row."""
            if not any(parts):
                return
            dist = _block_dist(_SCHEMA, parts)
            reference = multiprocessing_aggregate(
                dist, _QUERY, 1, strategy="spawn"
            )
            packed = multiprocessing_aggregate(
                dist, _QUERY, 1, strategy="global"
            )
            assert packed == reference

        @settings(max_examples=25, deadline=None)
        @given(rows=st.lists(_row, min_size=1, max_size=40))
        def test_single_fragment_degenerate(self, rows):
            """One fragment: the merge folds exactly one packed payload."""
            dist = _block_dist(_SCHEMA, [rows])
            reference = multiprocessing_aggregate(
                dist, _QUERY, 1, strategy="spawn"
            )
            packed = multiprocessing_aggregate(
                dist, _QUERY, 1, strategy="global"
            )
            assert packed == reference


class TestPackedEdgeShapes:
    def test_empty_fragments_between_populated_ones(self):
        parts = [
            [("a", "x", 1), ("b", "y\x00", 2)],
            [],
            [("a", "\x00", 3)],
            [],
        ]
        dist = _block_dist(_SCHEMA, parts)
        reference = multiprocessing_aggregate(
            dist, _QUERY, 1, strategy="spawn"
        )
        assert (
            multiprocessing_aggregate(dist, _QUERY, 1, strategy="global")
            == reference
        )

    def test_disjoint_dictionaries_union_correctly(self):
        # No shared strings between fragments: every merged value goes
        # through the union-dictionary LUT remap.
        parts = [
            [("k", "aa", 1), ("k", "ab", 2)],
            [("k", "b\x00", 3), ("k", "é", 4)],
        ]
        dist = _block_dist(_SCHEMA, parts)
        rows = multiprocessing_aggregate(dist, _QUERY, 1, strategy="global")
        assert rows == multiprocessing_aggregate(
            dist, _QUERY, 1, strategy="spawn"
        )
        (row,) = rows
        assert row[1] == "aa" and row[2] == "é" and row[3] == 4


# -- the mid-run adaptive controller ------------------------------------------


def _front_loaded_dist(num_nodes=4, rows_per_node=2000):
    """Every fragment's sampled prefix is one hot group; the rest of
    each fragment is all-distinct — the shape that fools any prefix
    sample but not the mid-run observation."""
    per = max(1, _AUTO_SAMPLE_ROWS // num_nodes)
    parts = []
    for i in range(num_nodes):
        part = [(0, 1.0, "")] * per
        part += [
            (1 + i * rows_per_node + j, 1.0, "")
            for j in range(rows_per_node - per)
        ]
        parts.append(part)
    schema = Schema(
        [Column("gkey", "int"), Column("val", "float"),
         Column("pad", "str", 84)]
    )
    return _block_dist(schema, parts)


class TestMidRunResample:
    def test_switch_is_exercised_and_verdict_annotated(self):
        dist = _front_loaded_dist()
        query = AggregateQuery(
            ("gkey",), (AggregateSpec("sum", "val"),)
        )
        ledger = DecisionLedger()
        rows = multiprocessing_aggregate(
            dist, query, 1, strategy="auto", ledger=ledger,
            auto_resample_after=1,
        )
        reference = multiprocessing_aggregate(
            dist, query, 1, strategy="spawn"
        )
        assert rows == reference

        by_kind = {e.kind: e for e in ledger.events}
        choice = by_kind[MP_STRATEGY_CHOICE]
        resample = by_kind[MP_STRATEGY_RESAMPLE]

        # The prefix sample sees one group -> the model picks pool (2P);
        # the first completed fragment reveals the true cardinality and
        # the controller switches to global mid-run.
        assert choice.data["chosen"] == "pool"
        assert resample.data["previous"] == "pool"
        assert resample.data["chosen"] == "global"
        assert resample.data["switched"] is True
        assert resample.data["observed_fragments"] == [0]
        assert resample.data["observed_groups"] > 1000

        # Both decisions carry post-hoc verdicts against the true group
        # count: the pre-run choice was wrong, the re-decision correct.
        assert choice.truth["true_groups"] == len(rows)
        assert choice.truth["decision_correct"] is False
        assert choice.truth["verdict"] != VERDICT_CORRECT
        assert resample.truth["decision_correct"] is True
        assert resample.truth["verdict"] == VERDICT_CORRECT

    def test_no_switch_when_sample_was_right(self):
        dist = generate_zipf(4000, 10, 4, seed=3)
        query = AggregateQuery(
            ("gkey",), (AggregateSpec("sum", "val"),)
        )
        ledger = DecisionLedger()
        rows = multiprocessing_aggregate(
            dist, query, 1, strategy="auto", ledger=ledger,
            auto_resample_after=2,
        )
        assert rows == multiprocessing_aggregate(
            dist, query, 1, strategy="spawn"
        )
        resample = next(
            e for e in ledger.events if e.kind == MP_STRATEGY_RESAMPLE
        )
        assert resample.data["switched"] is False
        assert resample.data["chosen"] == resample.data["previous"]
        assert resample.truth["verdict"] == VERDICT_CORRECT

    def test_resample_disabled_with_zero_window(self):
        dist = _front_loaded_dist()
        query = AggregateQuery(
            ("gkey",), (AggregateSpec("sum", "val"),)
        )
        ledger = DecisionLedger()
        multiprocessing_aggregate(
            dist, query, 1, strategy="auto", ledger=ledger,
            auto_resample_after=0,
        )
        kinds = [e.kind for e in ledger.events]
        assert MP_STRATEGY_CHOICE in kinds
        assert MP_STRATEGY_RESAMPLE not in kinds


class TestStratifiedSamplingRegression:
    def test_front_loaded_zipf_table_samples_every_fragment(self):
        """Sampling only fragment 0 locked in the wrong strategy when
        one fragment was all hot-group; the stratified sample must see
        every fragment and decide correctly."""
        base = generate_zipf(8000, 1500, 1, alpha=1.2, seed=5,
                             columnar=False)
        rows = base.all_rows()
        # Front-load: sort by group frequency so fragment 0 holds only
        # the hottest groups (few distinct keys), later fragments carry
        # the cardinality.
        freq: dict = {}
        for row in rows:
            freq[row[0]] = freq.get(row[0], 0) + 1
        rows.sort(key=lambda row: (-freq[row[0]], row[0]))
        num_nodes, n = 4, len(rows)
        parts = [
            rows[i * n // num_nodes:(i + 1) * n // num_nodes]
            for i in range(num_nodes)
        ]
        dist = _block_dist(base.schema, parts)
        query = AggregateQuery(
            ("gkey",), (AggregateSpec("sum", "val"),)
        )

        ledger = DecisionLedger()
        result = multiprocessing_aggregate(
            dist, query, 1, strategy="auto", ledger=ledger
        )
        choice = next(
            e for e in ledger.events if e.kind == MP_STRATEGY_CHOICE
        )
        assert choice.data["sampled_fragments"] == num_nodes
        assert choice.truth["decision_correct"] is True

        # The regression: a fragment-0-only prefix sample sees so few
        # groups the model picks the other branch.
        frag0 = parts[0][:_AUTO_SAMPLE_ROWS]
        biased = max(
            1.0 / len(rows),
            len({row[0] for row in frag0}) / len(frag0),
        )
        biased_choice, _ = choose_mp_strategy(_auto_params(dist), biased)
        assert biased_choice != choice.data["chosen"]
        assert len(result) == 1500
