"""Cross-algorithm metric invariants on real runs."""

import pytest

from repro.core.runner import ALGORITHMS, run_algorithm
from repro.workloads.generator import generate_uniform

pytestmark = pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))


@pytest.fixture(scope="module")
def dist():
    return generate_uniform(4000, 300, 4, seed=0)


class TestMetricInvariants:
    def test_messages_conserved(self, algorithm, dist, sum_query):
        """Every algorithm drains its mail: sent == received."""
        out = run_algorithm(algorithm, dist, sum_query)
        sent = sum(n.messages_sent for n in out.metrics.nodes)
        received = sum(n.messages_received for n in out.metrics.nodes)
        assert sent == received

    def test_every_node_finishes(self, algorithm, dist, sum_query):
        out = run_algorithm(algorithm, dist, sum_query)
        assert all(n.finish_time > 0 for n in out.metrics.nodes)

    def test_makespan_bounds_busy_time(self, algorithm, dist, sum_query):
        out = run_algorithm(algorithm, dist, sum_query)
        for n in out.metrics.nodes:
            assert n.busy_seconds <= out.elapsed_seconds + 1e-9

    def test_scan_io_matches_fragment_pages(
        self, algorithm, dist, sum_query
    ):
        """Base-relation scan I/O = exactly the fragments' page counts
        (+ any random sampling I/O for the sampling algorithm)."""
        out = run_algorithm(algorithm, dist, sum_query)
        from repro.core.runner import default_parameters

        params = default_parameters(dist)
        for node_id, frag in enumerate(dist.fragments):
            tagged = out.metrics.node(node_id).tagged_seconds
            scan = tagged.get("scan_io", 0.0)
            expected = frag.num_pages(params.page_bytes) * params.io_seconds
            assert scan == pytest.approx(expected)

    def test_bytes_sent_positive_multinode(
        self, algorithm, dist, sum_query
    ):
        out = run_algorithm(algorithm, dist, sum_query)
        assert out.metrics.total_bytes_sent > 0

    def test_network_blocks_match_node_counters(
        self, algorithm, dist, sum_query
    ):
        """Blocks the network carried = blocks nodes sent to peers."""
        out = run_algorithm(algorithm, dist, sum_query)
        # Self-sends bypass the network; in these algorithms a node's
        # channel to itself is also counted in blocks_sent, so the
        # network total is at most the node total.
        node_blocks = sum(n.blocks_sent for n in out.metrics.nodes)
        assert 0 < out.metrics.network_blocks <= node_blocks

    def test_pipeline_removes_scan_and_store_only(
        self, algorithm, dist, sum_query
    ):
        full = run_algorithm(algorithm, dist, sum_query)
        pipe = run_algorithm(algorithm, dist, sum_query, pipeline=True)
        for node in pipe.metrics.nodes:
            assert node.tagged_seconds.get("scan_io", 0.0) == 0.0
            assert node.tagged_seconds.get("store_io", 0.0) == 0.0
        # CPU work is unchanged by the pipeline flag.
        assert pipe.metrics.total_cpu_seconds == pytest.approx(
            full.metrics.total_cpu_seconds, rel=1e-6
        )
