"""Tests for the decision ledger: recording, ground truth, artifacts.

The ledger is the audit trail of the paper's run-time choices; these
tests pin that every adaptive site records its inputs, that post-hoc
annotation judges decisions against the real group count (including the
case where sampling genuinely picks the wrong branch), and that the
``repro-run/1`` artifact roundtrips through disk.
"""

from __future__ import annotations

import pytest

from repro.core.runner import ALGORITHMS, default_parameters, run_algorithm
from repro.obs import (
    DecisionLedger,
    Tracer,
    annotate_ground_truth,
    load_run_json,
    render_explain,
    run_artifact,
    write_run_json,
)
from repro.obs.decisions import (
    A2P_SWITCH,
    AREP_ECHO,
    AREP_SWITCH,
    DecisionEvent,
    SAMPLING_DECISION,
    VERDICT_CORRECT,
    VERDICT_WRONG_CHEAP,
    VERDICT_WRONG_COSTLY,
)
from repro.sim.faults import CrashFault, FaultPlan
from repro.workloads.generator import generate_uniform, generate_zipf


@pytest.fixture
def many_groups_dist():
    """Enough groups to overflow every node's table and trip switches."""
    return generate_uniform(
        num_tuples=8000, num_groups=2000, num_nodes=4, seed=3
    )


class TestRecording:
    def test_sampling_records_decision_inputs(self, small_dist, sum_query):
        ledger = DecisionLedger()
        run_algorithm("sampling", small_dist, sum_query, ledger=ledger)
        (event,) = ledger.events_of(SAMPLING_DECISION)
        assert event.node == 0  # the coordinator decides
        for key in (
            "estimated_groups",
            "estimator",
            "threshold",
            "choice",
            "distinct_in_sample",
            "sample_size",
            "sample_per_node",
        ):
            assert key in event.data, key
        assert event.data["choice"] in ("two_phase", "repartitioning")

    def test_a2p_records_switches(self, many_groups_dist, sum_query):
        ledger = DecisionLedger()
        run_algorithm(
            "adaptive_two_phase", many_groups_dist, sum_query, ledger=ledger
        )
        switches = ledger.events_of(A2P_SWITCH)
        assert len(switches) == many_groups_dist.num_nodes
        for event in switches:
            assert event.data["tuples_seen"] >= 0
            assert event.data["table_capacity"] > 0
            assert event.data["groups_accumulated"] > 0

    def test_arep_records_echo_and_switch(self, small_dist, sum_query):
        # 16 groups on 4 nodes: A-Rep finishes its initSeg probe well
        # under the switch threshold and falls back to Two Phase.
        ledger = DecisionLedger()
        run_algorithm(
            "adaptive_repartitioning", small_dist, sum_query, ledger=ledger
        )
        switches = ledger.events_of(AREP_SWITCH)
        assert switches, "expected the low-group fallback to fire"
        for event in switches:
            assert event.data["switch_groups"] > 0
            assert event.data["init_seg"] > 0
        assert ledger.events_of(AREP_ECHO)

    def test_no_ledger_means_no_recording(self, small_dist, sum_query):
        # Smoke-checks the None short-circuit path (parity is pinned
        # separately in test_obs_parity.py).
        outcome = run_algorithm("sampling", small_dist, sum_query)
        assert outcome.num_groups == 16

    def test_span_linkage(self, small_dist, sum_query):
        ledger = DecisionLedger()
        tracer = Tracer()
        run_algorithm(
            "sampling", small_dist, sum_query,
            tracer=tracer, ledger=ledger,
        )
        (event,) = ledger.events_of(SAMPLING_DECISION)
        assert event.span_id is not None
        assert event.span_id in {
            span.span_id for span in tracer.spans
        }

    def test_ledger_survives_fault_recovery(self, small_dist, sum_query):
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "adaptive_repartitioning", small_dist, sum_query,
            faults=FaultPlan(
                seed=5, crashes=(CrashFault(1, after_tuples=150),)
            ),
            ledger=ledger,
        )
        assert outcome.num_groups == 16
        assert len(ledger) > 0
        # Recovery renumbers surviving nodes; recorded ids must stay in
        # the original cluster's id space and times must be monotone
        # across attempts (never negative after the offset).
        for event in ledger.events:
            assert 0 <= event.node < small_dist.num_nodes
            assert event.time >= 0.0


class TestGroundTruthMetric:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_total_groups_output_matches_result(
        self, algorithm, small_dist, sum_query
    ):
        """The metrics' ground-truth group count equals the answer's."""
        outcome = run_algorithm(algorithm, small_dist, sum_query)
        assert outcome.metrics.total_groups_output == outcome.num_groups
        assert (
            outcome.metrics.to_dict()["total_groups_output"]
            == outcome.num_groups
        )


class TestAnnotation:
    def test_correct_sampling_decision(self, many_groups_dist, sum_query):
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "sampling", many_groups_dist, sum_query, ledger=ledger
        )
        params = default_parameters(many_groups_dist)
        annotate_ground_truth(ledger, outcome.num_groups, params)
        (event,) = ledger.events_of(SAMPLING_DECISION)
        truth = event.truth
        assert truth["true_groups"] == outcome.num_groups
        assert truth["truth_choice"] == "repartitioning"
        assert truth["decision_correct"] is True
        assert truth["verdict"] == VERDICT_CORRECT
        counterfactual = truth["counterfactual"]
        assert counterfactual["chosen"] == "repartitioning"
        assert counterfactual["alternative"] == "two_phase"
        assert counterfactual["chosen_model_seconds"] > 0
        assert counterfactual["alternative_model_seconds"] > 0

    def test_wrong_branch_under_skew(self, sum_query):
        """Heavy skew fools the estimator into the wrong branch.

        A Zipf(2.5) relation hides most of its 3000 groups in the tail:
        the pooled sample sees ~34 distinct keys, below the threshold of
        40, so Samp picks Two Phase even though the true group count is
        75x the threshold.  The annotation must call this out.
        """
        dist = generate_zipf(
            num_tuples=20000, num_groups=3000, num_nodes=4,
            alpha=2.5, seed=7,
        )
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "sampling", dist, sum_query, ledger=ledger,
            sample_multiplier=0.25,
        )
        (event,) = ledger.events_of(SAMPLING_DECISION)
        assert event.data["estimated_groups"] < event.data["threshold"]
        assert event.data["choice"] == "two_phase"
        assert outcome.num_groups == 3000

        annotate_ground_truth(
            ledger, outcome.num_groups, default_parameters(dist)
        )
        truth = event.truth
        assert truth["decision_correct"] is False
        assert truth["truth_choice"] == "repartitioning"
        assert truth["estimate_rel_error"] < -0.9
        assert truth["verdict"] in (
            VERDICT_WRONG_CHEAP, VERDICT_WRONG_COSTLY
        )

    def test_a2p_switch_judged_against_capacity(
        self, many_groups_dist, sum_query
    ):
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "adaptive_two_phase", many_groups_dist, sum_query, ledger=ledger
        )
        annotate_ground_truth(
            ledger, outcome.num_groups, default_parameters(many_groups_dist)
        )
        for event in ledger.events_of(A2P_SWITCH):
            assert event.truth["groups_exceed_capacity"] is True
            assert event.truth["verdict"] == VERDICT_CORRECT


class TestRunArtifact:
    def test_roundtrip_through_disk(
        self, many_groups_dist, sum_query, tmp_path
    ):
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "sampling", many_groups_dist, sum_query, ledger=ledger
        )
        params = default_parameters(many_groups_dist)
        doc = run_artifact(
            "sampling", outcome, ledger, params,
            workload={"kind": "uniform", "num_tuples": 8000},
        )
        path = str(tmp_path / "run.json")
        write_run_json(doc, path)
        loaded = load_run_json(path)
        assert loaded["schema"] == "repro-run/1"
        assert loaded["algorithm"] == "sampling"
        assert loaded["num_groups"] == outcome.num_groups
        assert loaded["decisions"] == doc["decisions"]
        assert loaded["params"]["num_nodes"] == params.num_nodes

    def test_event_dict_roundtrip(self):
        event = DecisionEvent(
            kind=SAMPLING_DECISION, node=0, time=1.5,
            data={"estimated_groups": 12.0}, span_id=7,
            truth={"verdict": VERDICT_CORRECT},
        )
        assert DecisionEvent.from_dict(event.to_dict()) == event
        ledger = DecisionLedger.from_dicts([event.to_dict()])
        assert len(ledger) == 1
        assert ledger.events[0].span_id == 7

    def test_render_explain_shows_judgement(
        self, many_groups_dist, sum_query
    ):
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "sampling", many_groups_dist, sum_query, ledger=ledger
        )
        doc = run_artifact(
            "sampling", outcome, ledger, default_parameters(many_groups_dist)
        )
        text = render_explain(doc)
        assert "sampling_decision" in text
        assert "estimate_rel_error" in text
        assert "truth_would_pick" in text
        assert "model cost: chosen" in text
        assert "verdicts: 1 correct" in text

    def test_render_explain_without_decisions(self, small_dist, sum_query):
        ledger = DecisionLedger()
        outcome = run_algorithm(
            "two_phase", small_dist, sum_query, ledger=ledger
        )
        doc = run_artifact(
            "two_phase", outcome, ledger, default_parameters(small_dist)
        )
        assert "no adaptive decisions" in render_explain(doc)
