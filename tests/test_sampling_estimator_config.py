"""The Sampling algorithm's pluggable group-count estimator."""

import pytest

from repro.core.algorithms import SimConfig
from repro.core.runner import run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


class TestEstimatorConfig:
    def test_invalid_estimator_rejected(self, small_dist, sum_query):
        with pytest.raises(ValueError, match="estimator"):
            run_algorithm(
                "sampling", small_dist, sum_query, estimator="psychic"
            )

    @pytest.mark.parametrize(
        "estimator", ["lower_bound", "chao1", "jackknife"]
    )
    def test_all_estimators_produce_correct_results(
        self, estimator, sum_query
    ):
        dist = generate_uniform(4000, 100, 4, seed=0)
        out = run_algorithm(
            "sampling",
            dist,
            sum_query,
            sampling_threshold=40,
            estimator=estimator,
        )
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))
        decision = out.events_named("sampling_decision")[0]
        assert decision.detail["estimator"] == estimator
        assert decision.detail["estimated_groups"] >= (
            decision.detail["distinct_in_sample"]
        )

    def test_chao1_can_flip_an_undersampled_decision(self, sum_query):
        """Near the threshold, the lower bound undershoots while Chao1's
        singleton correction pushes the estimate over the line."""
        dist = generate_uniform(60_000, 3_000, 4, seed=2)
        common = dict(
            sampling_threshold=1500,
            sample_multiplier=1.0,  # deliberately tiny sample
        )
        lower = run_algorithm(
            "sampling", dist, sum_query,
            config=SimConfig(estimator="lower_bound", **common),
        )
        chao = run_algorithm(
            "sampling", dist, sum_query,
            config=SimConfig(estimator="chao1", **common),
        )
        d_lower = lower.events_named("sampling_decision")[0].detail
        d_chao = chao.events_named("sampling_decision")[0].detail
        assert d_chao["estimated_groups"] > d_lower["estimated_groups"]
        # Both still compute the right answer regardless of the choice.
        ref = reference_aggregate(dist, sum_query)
        assert_rows_close(lower.rows, ref)
        assert_rows_close(chao.rows, ref)

    def test_estimated_groups_logged_as_float(self, sum_query):
        dist = generate_uniform(2000, 50, 4, seed=3)
        out = run_algorithm(
            "sampling", dist, sum_query, estimator="jackknife"
        )
        detail = out.events_named("sampling_decision")[0].detail
        assert isinstance(detail["estimated_groups"], float)
