"""Span tree well-formedness: the tracer on real simulated runs."""

from __future__ import annotations

import pytest

from repro.core.runner import run_algorithm
from repro.obs import Tracer
from repro.obs.tracer import NODE, OPERATOR, PHASE, QUERY, NullTracer
from repro.sim.faults import CrashFault, FaultPlan


def traced(algorithm, dist, query, **kw):
    tracer = Tracer(**kw)
    outcome = run_algorithm(algorithm, dist, query, tracer=tracer)
    return tracer, outcome


class TestSpanTree:
    def test_exactly_one_query_span(self, small_dist, sum_query):
        tracer, outcome = traced("two_phase", small_dist, sum_query)
        roots = tracer.spans_by_cat(QUERY)
        assert len(roots) == 1
        (query_span,) = roots
        assert query_span.track == -1
        assert query_span.parent_id is None
        assert query_span.start == 0.0
        assert query_span.end == pytest.approx(outcome.elapsed_seconds)

    def test_node_spans_are_query_children(self, small_dist, sum_query):
        tracer, outcome = traced("two_phase", small_dist, sum_query)
        (query_span,) = tracer.spans_by_cat(QUERY)
        node_spans = tracer.spans_by_cat(NODE)
        assert len(node_spans) == small_dist.num_nodes
        assert sorted(s.track for s in node_spans) == list(
            range(small_dist.num_nodes)
        )
        for span in node_spans:
            assert span.parent_id == query_span.span_id
            assert span.end == pytest.approx(
                outcome.metrics.node(span.track).finish_time
            )

    def test_phase_spans_nest_under_their_node(self, small_dist, sum_query):
        tracer, _ = traced("two_phase", small_dist, sum_query)
        by_id = {s.span_id: s for s in tracer.spans}
        phases = tracer.spans_by_cat(PHASE)
        assert phases, "algorithm bodies must emit phase spans"
        assert {p.name for p in phases} == {
            "local_aggregation", "flush_partials", "merge",
        }
        for phase in phases:
            parent = by_id[phase.parent_id]
            assert parent.cat == NODE
            assert parent.track == phase.track

    def test_parent_interval_contains_child(self, small_dist, full_query):
        tracer, _ = traced("repartitioning", small_dist, full_query)
        by_id = {s.span_id: s for s in tracer.spans}
        tol = 1e-9
        for span in tracer.spans:
            assert span.end is not None, f"open span {span.name!r}"
            assert span.start <= span.end + tol
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start <= span.start + tol
            assert span.end <= parent.end + tol

    def test_no_open_spans_after_clean_run(self, small_dist, sum_query):
        tracer, _ = traced("adaptive_two_phase", small_dist, sum_query)
        assert tracer.open_spans() == []

    def test_no_open_spans_after_crash_recovery(self, small_dist, sum_query):
        tracer = Tracer()
        plan = FaultPlan(seed=7, crashes=(CrashFault(2, after_tuples=120),))
        run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan, tracer=tracer
        )
        assert tracer.open_spans() == []
        # The crashed node's attempt leaves node_crash/crash_detected
        # instants on the shared timeline.
        names = {i["name"] for i in tracer.instants}
        assert "node_crash" in names
        assert "crash_detected" in names

    def test_operator_spans_toggle(self, small_dist, sum_query):
        with_ops, _ = traced("two_phase", small_dist, sum_query)
        without, _ = traced(
            "two_phase", small_dist, sum_query, operator_spans=False
        )
        assert with_ops.spans_by_cat(OPERATOR)
        assert without.spans_by_cat(OPERATOR) == []
        # Structure above the operator layer is unaffected.
        assert len(without.spans_by_cat(PHASE)) == len(
            with_ops.spans_by_cat(PHASE)
        )


class TestTimeShifting:
    def test_time_offset_shifts_records(self):
        tracer = Tracer()
        tracer.time_offset = 10.0
        span = tracer.begin("a", track=0, t=1.0)
        tracer.instant("tick", 0, 1.5)
        tracer.end(span, 2.0)
        assert span.start == pytest.approx(11.0)
        assert span.end == pytest.approx(12.0)
        assert tracer.instants[0]["time"] == pytest.approx(11.5)

    def test_track_map_renumbers_at_record_time(self):
        tracer = Tracer()
        tracer.track_map = {0: 3, 1: 5}
        span = tracer.begin("a", track=0, t=0.0)
        tracer.complete("op", 1, 0.0, 1.0)
        tracer.instant("tick", 0, 0.5)
        tracer.end(span, 1.0)
        assert span.track == 3
        assert tracer.spans[-1].track == 5
        assert tracer.instants[0]["track"] == 3
        # The cluster track is never remapped.
        q = tracer.begin("q", track=-1, t=0.0)
        tracer.end(q, 1.0)
        assert q.track == -1

    def test_recovery_spans_land_on_original_tracks(
        self, small_dist, sum_query
    ):
        tracer = Tracer()
        plan = FaultPlan(seed=7, crashes=(CrashFault(2, after_tuples=120),))
        run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan, tracer=tracer
        )
        tracks = {s.track for s in tracer.spans}
        # Attempt 2 runs 3 sim nodes, but their spans must appear on the
        # surviving *original* node ids — never above the cluster size.
        assert tracks <= set(range(-1, small_dist.num_nodes))
        queries = tracer.spans_by_cat(QUERY)
        assert len(queries) == 2  # one span per attempt, one timeline
        first, second = sorted(queries, key=lambda s: s.start)
        assert second.start >= first.end


class TestNullTracer:
    def test_noop_protocol(self):
        null = NullTracer()
        span = null.begin("a", track=0, t=0.0)
        null.end(span, 1.0)
        null.complete("b", 0, 0.0, 1.0)
        null.instant("c", 0, 0.5)
        null.close_all(2.0)
        assert null.open_spans() == []
        assert not null.enabled
