"""The out-of-core file-backed executor must match the reference exactly
while really touching the disk."""

import os

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import (
    file_backed_aggregate,
    materialize_fragments,
    reference_aggregate,
)
from repro.workloads.generator import generate_uniform, generate_zipf

from tests.conftest import assert_rows_close


class TestMaterialize:
    def test_writes_one_file_per_node(self, tmp_path, small_dist):
        paths = materialize_fragments(small_dist, str(tmp_path))
        assert len(paths) == small_dist.num_nodes
        assert all(os.path.exists(p) for p in paths)
        assert all(os.path.getsize(p) % 4096 == 0 for p in paths)


class TestFileBackedAggregate:
    def test_matches_reference(self, tmp_path, sum_query):
        dist = generate_uniform(3000, 80, 4, seed=0)
        rows, stats = file_backed_aggregate(
            dist, sum_query, str(tmp_path)
        )
        assert_rows_close(rows, reference_aggregate(dist, sum_query))
        assert stats["pages_read"] > 0
        assert stats["spill_bytes"] == 0  # 80 groups fit the table

    def test_out_of_core_spills_really_happen(self, tmp_path, sum_query):
        dist = generate_uniform(3000, 900, 4, seed=1)
        rows, stats = file_backed_aggregate(
            dist, sum_query, str(tmp_path), max_entries=20
        )
        assert_rows_close(rows, reference_aggregate(dist, sum_query))
        assert stats["spill_bytes"] > 0
        assert stats["overflow_passes"] > 0

    def test_spill_files_cleaned_up(self, tmp_path, sum_query):
        dist = generate_uniform(1000, 300, 2, seed=2)
        file_backed_aggregate(
            dist, sum_query, str(tmp_path), max_entries=8
        )
        leftovers = [
            name
            for _root, _dirs, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".spill")
        ]
        assert leftovers == []

    def test_where_and_having(self, tmp_path):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("count", None, alias="n")],
            where=lambda r: r["val"] > 50.0,
            having=lambda r: r["n"] >= 10,
        )
        dist = generate_uniform(2000, 30, 2, seed=3)
        rows, _stats = file_backed_aggregate(dist, query, str(tmp_path))
        assert_rows_close(rows, reference_aggregate(dist, query))

    def test_zipf_with_all_functions(self, tmp_path, full_query):
        dist = generate_zipf(2000, 150, 3, seed=4)
        rows, _stats = file_backed_aggregate(
            dist, full_query, str(tmp_path), max_entries=32
        )
        assert_rows_close(
            rows, reference_aggregate(dist, full_query), tol=1e-9
        )

    def test_pages_read_matches_file_sizes(self, tmp_path, sum_query):
        dist = generate_uniform(1000, 10, 2, seed=5)
        _rows, stats = file_backed_aggregate(
            dist, sum_query, str(tmp_path)
        )
        expected_pages = sum(
            os.path.getsize(os.path.join(tmp_path, f"node_{i}.pages"))
            // 4096
            for i in range(2)
        )
        assert stats["pages_read"] == expected_pages