"""Unit tests of the fault-injection layer (plan validation + engine)."""

import pytest

from repro.core.runner import run_algorithm
from repro.sim.faults import (
    CrashFault,
    FaultConfigError,
    FaultPlan,
    Straggler,
)

from tests.conftest import assert_rows_close


class TestFaultPlanValidation:
    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(FaultConfigError):
            CrashFault(0)
        with pytest.raises(FaultConfigError):
            CrashFault(0, at_time=1.0, after_tuples=10)

    def test_crash_trigger_ranges(self):
        with pytest.raises(FaultConfigError):
            CrashFault(0, at_time=-0.1)
        with pytest.raises(FaultConfigError):
            CrashFault(0, after_tuples=0)

    def test_straggler_must_slow_down(self):
        with pytest.raises(FaultConfigError):
            Straggler(0, 0.5)

    def test_probabilities_in_range(self):
        for name in ("message_loss", "message_duplication",
                     "read_error_rate"):
            with pytest.raises(FaultConfigError):
                FaultPlan(**{name: 1.0})
            with pytest.raises(FaultConfigError):
                FaultPlan(**{name: -0.1})

    def test_transport_parameters(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(ack_timeout=0.0)
        with pytest.raises(FaultConfigError):
            FaultPlan(backoff=0.5)
        with pytest.raises(FaultConfigError):
            FaultPlan(ack_timeout=0.1, max_backoff=0.05)
        with pytest.raises(FaultConfigError):
            FaultPlan(max_send_retries=0)

    def test_one_crash_per_node(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(
                crashes=(
                    CrashFault(1, at_time=0.1),
                    CrashFault(1, after_tuples=5),
                )
            )

    def test_active_property(self):
        assert not FaultPlan().active
        assert FaultPlan(message_loss=0.1).active
        assert FaultPlan(stragglers=(Straggler(0, 2.0),)).active
        assert FaultPlan(crashes=(CrashFault(0, at_time=1.0),)).active


class TestInactivePlanIsFree:
    def test_inactive_plan_matches_fault_free_run(
        self, small_dist, sum_query
    ):
        """faults=FaultPlan() must reproduce the fault-free run exactly.

        Same rows, same elapsed time, same per-node finish times — the
        fault machinery must be zero-cost when nothing is injected.
        """
        clean = run_algorithm("two_phase", small_dist, sum_query)
        gated = run_algorithm(
            "two_phase", small_dist, sum_query, faults=FaultPlan()
        )
        assert gated.rows == clean.rows
        assert gated.elapsed_seconds == clean.elapsed_seconds
        assert [n.finish_time for n in gated.metrics.nodes] == [
            n.finish_time for n in clean.metrics.nodes
        ]
        assert gated.metrics.total_retries == 0
        assert gated.metrics.total_reexecuted_tuples == 0
        assert gated.metrics.degraded_makespan == 0.0

    def test_default_config_has_no_fault_metrics(
        self, small_dist, sum_query
    ):
        out = run_algorithm("repartitioning", small_dist, sum_query)
        assert out.metrics.total_retries == 0
        assert out.metrics.total_timeouts == 0
        assert out.metrics.crashed_nodes == []
        assert out.metrics.degraded_makespan == 0.0


class TestStragglers:
    def test_straggler_slows_the_run(self, small_dist, sum_query):
        clean = run_algorithm("two_phase", small_dist, sum_query)
        plan = FaultPlan(stragglers=(Straggler(2, 4.0),))
        slow = run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan
        )
        assert_rows_close(slow.rows, clean.rows)
        assert slow.elapsed_seconds > 1.5 * clean.elapsed_seconds
        # The straggler holds everyone's merge phase back: each node
        # finishes later than the whole fault-free run took.
        assert all(
            n.finish_time > clean.elapsed_seconds
            for n in slow.metrics.nodes
        )
        assert slow.metrics.degraded_makespan == slow.elapsed_seconds


class TestUnreliableTransport:
    def test_message_loss_is_retried_not_lost(self, small_dist, sum_query):
        ref = run_algorithm("two_phase", small_dist, sum_query)
        plan = FaultPlan(seed=3, message_loss=0.3)
        out = run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan
        )
        assert_rows_close(out.rows, ref.rows)
        assert out.metrics.total_retries > 0
        assert out.metrics.total_timeouts > 0
        assert out.elapsed_seconds > ref.elapsed_seconds

    def test_duplicates_are_suppressed(self, small_dist, sum_query):
        ref = run_algorithm("repartitioning", small_dist, sum_query)
        plan = FaultPlan(seed=5, message_duplication=0.4)
        out = run_algorithm(
            "repartitioning", small_dist, sum_query, faults=plan
        )
        assert_rows_close(out.rows, ref.rows)
        total_dups = sum(
            n.duplicates_dropped for n in out.metrics.nodes
        )
        assert total_dups > 0

    def test_read_errors_reissue_the_request(self, small_dist, sum_query):
        ref = run_algorithm("two_phase", small_dist, sum_query)
        plan = FaultPlan(seed=7, read_error_rate=0.3)
        out = run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan
        )
        assert_rows_close(out.rows, ref.rows)
        assert out.metrics.total_retries > 0
        assert out.elapsed_seconds > ref.elapsed_seconds


class TestCrashRecovery:
    def test_crash_mid_scan_recovers(self, small_dist, sum_query):
        ref = run_algorithm("two_phase", small_dist, sum_query)
        plan = FaultPlan(crashes=(CrashFault(1, after_tuples=200),))
        out = run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan
        )
        assert_rows_close(out.rows, ref.rows)
        assert out.metrics.crashed_nodes == [1]
        assert out.metrics.total_reexecuted_tuples == len(
            small_dist.fragments[1]
        )
        assert out.metrics.degraded_makespan > ref.elapsed_seconds
        assert len(out.events_named("node_crash")) == 1
        assert len(out.events_named("crash_detected")) == 1
        assert len(out.events_named("takeover")) == 1

    def test_crash_at_time_recovers(self, small_dist, sum_query):
        ref = run_algorithm("repartitioning", small_dist, sum_query)
        plan = FaultPlan(crashes=(CrashFault(3, at_time=0.01),))
        out = run_algorithm(
            "repartitioning", small_dist, sum_query, faults=plan
        )
        assert_rows_close(out.rows, ref.rows)
        assert out.metrics.crashed_nodes == [3]
        assert out.metrics.total_reexecuted_tuples > 0

    def test_crash_after_natural_finish_never_fires(
        self, small_dist, sum_query
    ):
        clean = run_algorithm("two_phase", small_dist, sum_query)
        plan = FaultPlan(
            crashes=(
                CrashFault(0, at_time=clean.elapsed_seconds * 100),
            )
        )
        out = run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan
        )
        assert out.rows == clean.rows  # never fired: bit-identical run
        assert out.metrics.crashed_nodes == []

    def test_two_crashes_both_recovered(self, small_dist, sum_query):
        ref = run_algorithm("two_phase", small_dist, sum_query)
        plan = FaultPlan(
            crashes=(
                CrashFault(1, after_tuples=150),
                CrashFault(3, after_tuples=350),
            )
        )
        out = run_algorithm(
            "two_phase", small_dist, sum_query, faults=plan
        )
        assert_rows_close(out.rows, ref.rows)
        assert out.metrics.crashed_nodes == [1, 3]
        assert out.metrics.total_reexecuted_tuples >= len(
            small_dist.fragments[1]
        ) + len(small_dist.fragments[3])
