"""Tests for the Volcano-style local operator engine."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.engine import (
    HashAggregateOp,
    HavingOp,
    LimitOp,
    ProjectOp,
    ScanOp,
    SelectOp,
    SortAggregateOp,
    SortOp,
    build_aggregate_plan,
    execute,
    explain,
    run_query,
)
from repro.parallel import reference_aggregate
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


@pytest.fixture
def relation():
    schema = Schema(
        [Column("k", "int"), Column("v", "float"), Column("tag", "str")]
    )
    rows = [
        (1, 10.0, "a"),
        (2, 20.0, "b"),
        (1, 30.0, "a"),
        (3, 40.0, "c"),
        (2, 50.0, "b"),
    ]
    return Relation(schema, rows)


class TestLeafAndFilters:
    def test_scan_streams_all(self, relation):
        assert list(ScanOp(relation).rows()) == relation.rows

    def test_select(self, relation):
        op = SelectOp(ScanOp(relation), lambda r: r["v"] > 25.0)
        assert len(list(op.rows())) == 3

    def test_select_schema_passthrough(self, relation):
        op = SelectOp(ScanOp(relation), lambda r: True)
        assert op.schema == relation.schema

    def test_project(self, relation):
        op = ProjectOp(ScanOp(relation), ["v", "k"])
        assert op.schema.names() == ["v", "k"]
        assert next(iter(op.rows())) == (10.0, 1)

    def test_limit(self, relation):
        op = LimitOp(ScanOp(relation), 2)
        assert len(list(op.rows())) == 2

    def test_limit_zero(self, relation):
        assert list(LimitOp(ScanOp(relation), 0).rows()) == []

    def test_limit_negative_rejected(self, relation):
        with pytest.raises(ValueError):
            LimitOp(ScanOp(relation), -1)

    def test_sort(self, relation):
        op = SortOp(ScanOp(relation), ["v"], descending=True)
        vals = [row[1] for row in op.rows()]
        assert vals == sorted(vals, reverse=True)


class TestAggregateOps:
    QUERY = AggregateQuery(
        group_by=["k"],
        aggregates=[
            AggregateSpec("sum", "v", alias="total"),
            AggregateSpec("count", None, alias="n"),
        ],
    )

    def test_hash_aggregate(self, relation):
        op = HashAggregateOp(ScanOp(relation), self.QUERY)
        rows = sorted(op.rows())
        assert rows == [(1, 40.0, 2), (2, 70.0, 2), (3, 40.0, 1)]

    def test_sort_aggregate_ordered_output(self, relation):
        op = SortAggregateOp(ScanOp(relation), self.QUERY)
        keys = [row[0] for row in op.rows()]
        assert keys == sorted(keys)

    def test_output_schema(self, relation):
        op = HashAggregateOp(ScanOp(relation), self.QUERY)
        assert op.schema.names() == ["k", "total", "n"]

    def test_bounded_memory_spills(self, relation):
        op = HashAggregateOp(ScanOp(relation), self.QUERY, max_entries=1)
        rows = sorted(op.rows())
        assert len(rows) == 3
        assert op.spilled_items > 0

    def test_having(self, relation):
        agg = HashAggregateOp(ScanOp(relation), self.QUERY)
        op = HavingOp(agg, lambda r: r["n"] >= 2)
        assert len(list(op.rows())) == 2

    def test_scalar_aggregate(self, relation):
        query = AggregateQuery(
            group_by=[], aggregates=[AggregateSpec("count", None)]
        )
        op = HashAggregateOp(ScanOp(relation), query)
        assert list(op.rows()) == [(5,)]


class TestPlanner:
    def test_plan_matches_reference(self):
        dist = generate_uniform(1500, 40, 1, seed=0)
        relation = dist.as_relation()
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("avg", "val")],
            where=lambda r: r["val"] > 10.0,
            having=lambda r: r["gkey"] % 3 == 0,
        )
        got = run_query(relation, query)
        assert_rows_close(
            sorted(got.rows), reference_aggregate(relation, query)
        )

    def test_sort_method_matches_hash(self):
        dist = generate_uniform(1000, 30, 1, seed=1)
        relation = dist.as_relation()
        query = AggregateQuery(
            group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
        )
        hash_rows = sorted(run_query(relation, query, method="hash").rows)
        sort_rows = list(
            run_query(relation, query, method="sort").rows
        )
        assert_rows_close(hash_rows, sort_rows)

    def test_bad_method(self, relation):
        query = AggregateQuery(
            group_by=["k"], aggregates=[AggregateSpec("count", None)]
        )
        with pytest.raises(ValueError, match="method"):
            build_aggregate_plan(relation, query, method="nested-loop")

    def test_execute_materializes(self, relation):
        query = AggregateQuery(
            group_by=["k"], aggregates=[AggregateSpec("count", None)]
        )
        result = execute(build_aggregate_plan(relation, query))
        assert isinstance(result, Relation)
        assert len(result) == 3

    def test_explain_shows_tree(self, relation):
        query = AggregateQuery(
            group_by=["k"],
            aggregates=[AggregateSpec("sum", "v")],
            where=lambda r: True,
            having=lambda r: True,
        )
        plan = build_aggregate_plan(relation, query, max_entries=100)
        text = explain(plan)
        assert "having" in text
        assert "hash_aggregate" in text
        assert "M=100" in text
        assert "scan(5 rows)" in text
        # Deeper operators are indented further.
        lines = text.splitlines()
        assert lines[0].startswith("-> ")
        assert lines[-1].startswith("   " * (len(lines) - 1))
