"""The columnar data path and the strategy family, pinned bit-for-bit.

Three layers of guarantees:

* **Golden parity** — the ``mp_strategies`` section of
  ``tests/golden/block_parity.json`` (written additively by
  ``tests/golden/make_mp_strategies.py``; the pre-existing simulator
  vectors are never regenerated) pins the executor's exact result rows.
  Every strategy — pool, spawn, global, rep — with columnar shipping on
  or off must reproduce the same digest.

* **Kernel parity** — ``_columnar_local_phase`` against the per-row
  reference on adversarial shapes: multi-column keys, dictionary
  strings with NULs, every aggregate, and the guard shapes (NaN,
  signed zeros, ints beyond exact-float range) where the kernel must
  *decline* rather than drift.

* **Regression pins** — the trailing-NUL corruption fix (fixed-width
  codec now rejects what it used to corrupt; the dictionary path
  round-trips it), and AVG/VAR/STDDEV merge results pinned as exact hex
  floats, not tolerances.
"""

import glob
import json
import math
import pathlib

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel.mp_executor import (
    _columnar_local_phase,
    _local_phase,
    multiprocessing_aggregate,
    set_columnar_shipping,
    shutdown_worker_pool,
)
from repro.storage.columnblock import ColumnBlock, have_numpy
from repro.storage.hashing import bucket_of, bucket_of_block
from repro.storage.relation import DistributedRelation
from repro.storage.rowblock import RowBlock
from repro.storage.schema import Column, Schema
from repro.storage.serialization import RowCodec

from tests.test_block_parity import _GEN  # reuse digest + workloads

_GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden" / "block_parity.json")
    .read_text()
)

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="the columnar path requires numpy"
)


@pytest.fixture(autouse=True)
def _columnar_default():
    yield
    set_columnar_shipping(True)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _load_mp_workload(name):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "make_mp_strategies",
        pathlib.Path(__file__).parent / "golden" / "make_mp_strategies.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.WORKLOADS[name]()


class TestGoldenStrategyParity:
    @pytest.mark.parametrize("columnar", [True, False])
    @pytest.mark.parametrize("strategy", ["pool", "spawn", "global", "rep"])
    @pytest.mark.parametrize("workload", sorted(_GOLDEN["mp_strategies"]))
    def test_strategy_matches_golden(self, workload, strategy, columnar):
        dist, query = _load_mp_workload(workload)
        want = _GOLDEN["mp_strategies"][workload]
        set_columnar_shipping(columnar)
        rows = multiprocessing_aggregate(dist, query, 4, strategy=strategy)
        assert len(rows) == want["num_rows"]
        assert _GEN.rows_digest(rows) == want["rows_sha256"]

    @pytest.mark.parametrize("workload", sorted(_GOLDEN["mp_strategies"]))
    def test_in_process_matches_golden(self, workload):
        dist, query = _load_mp_workload(workload)
        want = _GOLDEN["mp_strategies"][workload]
        for strategy in ("pool", "global", "rep"):
            rows = multiprocessing_aggregate(
                dist, query, 1, strategy=strategy
            )
            assert _GEN.rows_digest(rows) == want["rows_sha256"]


# -- kernel vs per-row parity -------------------------------------------------


def _assert_partials_equal(kernel, reference):
    """Bit-level comparison of (key, GroupState) partial lists."""
    def canon(partials):
        out = {}
        for key, group in partials:
            fields = []
            for state in group.states:
                slots = {
                    name: getattr(state, name)
                    for name in dir(state)
                    if name in (
                        "count", "total", "total_sq", "value", "seen",
                        "values",
                    )
                }
                fields.append(sorted(slots.items(), key=lambda kv: kv[0]))
            out[key] = fields
        return out

    got, want = canon(kernel), canon(reference)
    assert sorted(got) == sorted(want)
    for key in want:
        for f_got, f_want in zip(got[key], want[key]):
            for (name_g, v_got), (name_w, v_want) in zip(f_got, f_want):
                assert name_g == name_w
                if isinstance(v_want, float):
                    assert isinstance(v_got, float)
                    assert v_got.hex() == v_want.hex(), (key, name_w)
                else:
                    assert v_got == v_want, (key, name_w)
                    assert type(v_got) is type(v_want), (key, name_w)


def _kernel_case(schema, rows, query):
    block = ColumnBlock.from_rows(schema, rows)
    kernel = _columnar_local_phase(block, query)
    reference = _local_phase((rows, query, schema))
    return kernel, reference


class TestKernelParity:
    def test_full_aggregate_menu_multi_key(self):
        import random

        rng = random.Random(99)
        schema = Schema([
            Column("k", "str", 10), Column("g", "int"),
            Column("x", "float"), Column("n", "int"),
        ])
        rows = [
            (
                rng.choice(["aa", "b\x00b", "c" * 9, "é", "nul\x00"]),
                rng.randrange(6),
                rng.uniform(-100, 100),
                rng.randrange(-1000, 1000),
            )
            for _ in range(2500)
        ]
        query = AggregateQuery(("k", "g"), (
            AggregateSpec("count", None),
            AggregateSpec("sum", "x"),
            AggregateSpec("sum", "n"),
            AggregateSpec("avg", "x"),
            AggregateSpec("avg", "n"),
            AggregateSpec("min", "x"),
            AggregateSpec("max", "n"),
            AggregateSpec("min", "k"),
            AggregateSpec("max", "k"),
            AggregateSpec("var", "x"),
            AggregateSpec("var", "n"),
            AggregateSpec("stddev", "x"),
            AggregateSpec("count_distinct", "n"),
            AggregateSpec("count_distinct", "k"),
        ))
        kernel, reference = _kernel_case(schema, rows, query)
        assert kernel is not None
        _assert_partials_equal(kernel, reference)

    def test_int_sums_stay_python_ints(self):
        schema = Schema([Column("g", "int"), Column("n", "int")])
        rows = [(0, 2**52), (0, 2**52 + 1), (1, -5)]
        query = AggregateQuery(("g",), (
            AggregateSpec("sum", "n"), AggregateSpec("avg", "n"),
        ))
        kernel, reference = _kernel_case(schema, rows, query)
        assert kernel is not None
        _assert_partials_equal(kernel, reference)

    def test_empty_block(self):
        schema = Schema([Column("g", "int"), Column("x", "float")])
        query = AggregateQuery(("g",), (AggregateSpec("sum", "x"),))
        kernel, reference = _kernel_case(schema, [], query)
        assert kernel == [] and reference == []

    @pytest.mark.parametrize("case", [
        "nan_key", "negzero_key", "nan_minmax", "negzero_minmax",
        "sum_overflow", "var_beyond_exact", "nan_distinct",
    ])
    def test_guards_decline(self, case):
        """Shapes whose vectorized result could drift must return None."""
        schema = Schema([
            Column("f", "float"), Column("n", "int"), Column("x", "float"),
        ])
        rows = {
            "nan_key": [(float("nan"), 1, 1.0), (2.0, 2, 2.0)],
            "negzero_key": [(-0.0, 1, 1.0), (0.0, 2, 2.0)],
            "nan_minmax": [(1.0, 1, float("nan")), (1.0, 2, 2.0)],
            "negzero_minmax": [(1.0, 1, -0.0), (1.0, 2, 0.0)],
            "sum_overflow": [(1.0, 2**62, 1.0), (1.0, 2**62, 1.0)],
            "var_beyond_exact": [(1.0, 2**53 + 1, 1.0)],
            "nan_distinct": [(1.0, 1, float("nan"))],
        }[case]
        spec = {
            "nan_key": AggregateSpec("count", None),
            "negzero_key": AggregateSpec("count", None),
            "nan_minmax": AggregateSpec("min", "x"),
            "negzero_minmax": AggregateSpec("max", "x"),
            "sum_overflow": AggregateSpec("sum", "n"),
            "var_beyond_exact": AggregateSpec("var", "n"),
            "nan_distinct": AggregateSpec("count_distinct", "x"),
        }[case]
        query = AggregateQuery(("f",), (spec,))
        block = ColumnBlock.from_rows(schema, rows)
        assert _columnar_local_phase(block, query) is None

    def test_guarded_shapes_still_correct_end_to_end(self):
        """Guard shapes fall back per-row and still match everywhere."""
        schema = Schema([Column("g", "int"), Column("x", "float")])
        rows = [(i % 3, v) for i, v in enumerate(
            [-0.0, 0.0, 1.5, float("nan"), -2.5, 0.0, -0.0, 3.25]
        )]
        dist = DistributedRelation(schema, [rows[0::2], rows[1::2]])
        query = AggregateQuery(("g",), (
            AggregateSpec("min", "x"), AggregateSpec("sum", "x"),
        ))
        results = [
            multiprocessing_aggregate(dist, query, 2, strategy=s)
            for s in ("pool", "spawn", "global", "rep")
        ]
        base = results[0]
        for rows_s in results[1:]:
            for r1, r2 in zip(rows_s, base):
                for a, b in zip(r1, r2):
                    if isinstance(a, float) and math.isnan(a):
                        assert math.isnan(b)
                    else:
                        assert a == b


# -- AVG / VAR / STDDEV merge parity: exact hex pins, not tolerances ----------


_MOMENT_GOLDEN = {
    "a": (
        "0x1.f0d2f1a9fbe77p+4", "0x1.a000000000000p+1",
        "0x1.da705c5ec9727p+11", "0x1.ecdc9cc7bc3fdp+5",
        "0x1.d955555555555p+4",
    ),
    "b": (
        "-0x1.a7ef9db22d0e6p+0", "0x1.c000000000000p+1",
        "0x1.7c948610976e8p+4", "0x1.3822ab3a871efp+2",
        "0x1.ad55555555555p+5",
    ),
}


class TestMomentMergeGolden:
    @pytest.mark.parametrize("strategy", ["pool", "spawn", "global", "rep"])
    @pytest.mark.parametrize("columnar", [True, False])
    def test_avg_var_stddev_bits(self, strategy, columnar):
        schema = Schema([
            Column("k", "str", 8), Column("x", "float"), Column("n", "int"),
        ])
        rows = [
            ("a", 1.25, 3), ("b", -2.5, 7), ("a", 0.1, -4),
            ("b", 3.75, 11), ("a", -0.6, 5), ("b", 1e-3, 2),
            ("a", 123.456, 9), ("b", -7.875, -6),
        ]
        dist = DistributedRelation(schema, [rows[0::2], rows[1::2]])
        query = AggregateQuery(("k",), (
            AggregateSpec("avg", "x"), AggregateSpec("avg", "n"),
            AggregateSpec("var", "x"), AggregateSpec("stddev", "x"),
            AggregateSpec("var", "n"),
        ))
        set_columnar_shipping(columnar)
        result = multiprocessing_aggregate(
            dist, query, 2, strategy=strategy
        )
        got = {
            row[0]: tuple(v.hex() for v in row[1:]) for row in result
        }
        assert got == _MOMENT_GOLDEN


# -- trailing-NUL corruption: rejected fixed-width, exact dictionary ----------


class TestTrailingNulRegression:
    def test_fixed_width_codec_rejects_with_column_name(self):
        schema = Schema([Column("name", "str", 8)])
        with pytest.raises(ValueError, match="name.*trailing NUL"):
            RowCodec(schema).encode(("abc\x00",))
        with pytest.raises(ValueError, match="name.*trailing NUL"):
            RowCodec(schema).encode_many([("ok",), ("abc\x00",)])

    def test_embedded_nul_still_round_trips_fixed_width(self):
        schema = Schema([Column("name", "str", 8)])
        codec = RowCodec(schema)
        rows = [("a\x00b",), ("\x00c",)]
        assert codec.decode_many(codec.encode_many(rows)) == rows

    def test_dictionary_path_round_trips_trailing_nul(self):
        schema = Schema([Column("name", "str", 8)])
        rows = [("abc\x00",), ("x\x00\x00",), ("",), ("\x00",)]
        block = ColumnBlock.from_rows(schema, rows)
        back = ColumnBlock.from_bytes(schema, block.to_bytes())
        assert back.to_rows() == rows

    def test_bucket_of_block_agrees_for_nul_adjacent_strings(self):
        # Embedded NULs are the encodable boundary shapes: block
        # bucketing must agree with per-tuple hashing exactly.
        schema = Schema([Column("k", "str", 8), Column("v", "int")])
        rows = [("a\x00b", 1), ("a", 2), ("\x00a", 3), ("ab", 4)] * 5
        block = RowBlock.from_rows(schema, rows)
        assert bucket_of_block(block, [0], 7) == [
            bucket_of((row[0],), 7) for row in rows
        ]

    def test_mp_executor_handles_trailing_nul_keys(self):
        """Trailing-NUL keys flow through every strategy identically.

        Columnar shipping carries them in the dictionary; with columnar
        off, the fixed-width encode *fails fast* and the fragment falls
        back to an inline descriptor — either way the results match.
        """
        schema = Schema([Column("k", "str", 8), Column("v", "int")])
        rows = [
            ("a\x00", 1), ("a", 2), ("b\x00\x00", 3), ("a\x00", 4),
            ("b", 5), ("", 6),
        ] * 4
        dist = DistributedRelation(schema, [rows[0::2], rows[1::2]])
        query = AggregateQuery(("k",), (
            AggregateSpec("sum", "v"), AggregateSpec("count", None),
        ))
        results = {}
        for columnar in (True, False):
            set_columnar_shipping(columnar)
            for strategy in ("pool", "spawn", "global", "rep"):
                results[(columnar, strategy)] = multiprocessing_aggregate(
                    dist, query, 2, strategy=strategy
                )
        base = results[(True, "pool")]
        keys = [row[0] for row in base]
        assert "a\x00" in keys and "b\x00\x00" in keys and "" in keys
        for got in results.values():
            assert got == base


# -- hygiene ------------------------------------------------------------------


def test_no_leaked_shm_segments():
    """Columnar and rep dispatch must unlink every repro_mp_* segment."""
    schema = Schema([Column("k", "str", 8), Column("v", "int")])
    rows = [(f"g{i % 13}", i) for i in range(1000)]
    dist = DistributedRelation(schema, [rows[0::2], rows[1::2]])
    query = AggregateQuery(("k",), (AggregateSpec("sum", "v"),))
    for strategy in ("pool", "global", "rep"):
        multiprocessing_aggregate(dist, query, 2, strategy=strategy)
    leaked = glob.glob("/dev/shm/repro_mp_*")
    assert leaked == [], f"leaked shm segments: {leaked}"
