"""Unit tests for the partitioners."""

import pytest

from repro.storage.partition import (
    hash_partition,
    range_partition,
    round_robin_partition,
)


class TestRoundRobin:
    def test_deals_in_order(self):
        parts = round_robin_partition([0, 1, 2, 3, 4], 2)
        assert parts == [[0, 2, 4], [1, 3]]

    def test_balance(self):
        parts = round_robin_partition(list(range(103)), 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        assert round_robin_partition([], 3) == [[], [], []]

    def test_preserves_all_rows(self):
        rows = list(range(50))
        parts = round_robin_partition(rows, 7)
        assert sorted(r for p in parts for r in p) == rows

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            round_robin_partition([1], 0)


class TestHashPartition:
    def test_same_key_same_partition(self):
        rows = [(1, "a"), (1, "b"), (2, "c"), (1, "d")]
        parts = hash_partition(rows, 4, key_func=lambda r: r[0])
        homes = [i for i, p in enumerate(parts) if any(r[0] == 1 for r in p)]
        assert len(homes) == 1

    def test_preserves_all_rows(self):
        rows = [(i,) for i in range(100)]
        parts = hash_partition(rows, 5, key_func=lambda r: r[0])
        assert sorted(r for p in parts for r in p) == rows

    def test_deterministic(self):
        rows = [(i,) for i in range(30)]
        a = hash_partition(rows, 3, key_func=lambda r: r[0])
        b = hash_partition(rows, 3, key_func=lambda r: r[0])
        assert a == b

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            hash_partition([], -1, key_func=lambda r: r)


class TestRangePartition:
    def test_basic_ranges(self):
        rows = [(i,) for i in (1, 5, 10, 15)]
        parts = range_partition(rows, [4, 12], key_func=lambda r: r[0])
        assert parts == [[(1,)], [(5,), (10,)], [(15,)]]

    def test_boundary_goes_left(self):
        parts = range_partition([(4,)], [4], key_func=lambda r: r[0])
        assert parts == [[(4,)], []]

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            range_partition([], [5, 2], key_func=lambda r: r)

    def test_no_boundaries_single_partition(self):
        parts = range_partition([(1,), (9,)], [], key_func=lambda r: r[0])
        assert parts == [[(1,), (9,)]]
