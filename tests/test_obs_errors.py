"""Hardened error paths: no more swallowed or untyped failures."""

from __future__ import annotations

import functools

import pytest

from repro.costmodel.params import SystemParameters
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import FragmentFailedError, multiprocessing_aggregate
from repro.parallel.mp_executor import _local_phase
from repro.resources import MemoryExceededError
from repro.sim.engine import Engine, _NodeState
from repro.sim.events import Compute
from repro.sim.faults import FaultPlan, FaultSchedule
from repro.sim.metrics import NodeMetrics


# --- simulator crash teardown (Engine._crash) ---------------------------


def _engine(tracer=None):
    params = SystemParameters.paper_default().with_(num_nodes=1)
    faults = FaultSchedule(FaultPlan(seed=0)).runtime([0])
    return Engine(params, faults=faults, tracer=tracer)


def _state(gen):
    next(gen)  # advance to the first yield so close() runs the finally
    return _NodeState(node_id=0, gen=gen, metrics=NodeMetrics(0))


def _stubborn():
    try:
        yield Compute(1.0)
    except GeneratorExit:
        yield Compute(1.0)  # refusing to die -> plain RuntimeError


def _typed_failure():
    try:
        yield Compute(1.0)
    finally:
        raise MemoryExceededError("table", 100, 200)


def _runtime_subclass_failure():
    class Custom(RuntimeError):
        pass

    try:
        yield Compute(1.0)
    finally:
        raise Custom("boom")


class TestCrashTeardown:
    def test_shutdown_noise_is_swallowed_and_traced(self):
        tracer = Tracer()
        engine = _engine(tracer)
        st = _state(_stubborn())
        engine._crash(st, 1.0)  # must not raise
        names = [i["name"] for i in tracer.instants]
        assert "generator_close_ignored" in names
        assert "node_crash" in names

    def test_typed_error_reraised(self):
        engine = _engine()
        st = _state(_typed_failure())
        with pytest.raises(MemoryExceededError):
            engine._crash(st, 1.0)
        # ... and recorded on the run trace before propagating.
        kinds = [ev.what for ev in engine.trace]
        assert "generator_close_error" in kinds

    def test_runtime_error_subclass_reraised(self):
        """Only *exact* RuntimeError is shutdown noise; subclasses are
        real failures (the typed memory errors are RuntimeError
        subclasses)."""
        engine = _engine()
        st = _state(_runtime_subclass_failure())
        with pytest.raises(RuntimeError, match="boom"):
            engine._crash(st, 1.0)


# --- mp executor cause chains -------------------------------------------


def _raise_value_error(job):
    raise ValueError("bad fragment")


def _raise_once_then_work(marker_path, job):
    import os

    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        raise KeyError("transient")
    return _local_phase(job)


class TestMpCauseChains:
    def test_in_process_preserves_cause(self, small_dist, sum_query):
        with pytest.raises(FragmentFailedError) as err:
            multiprocessing_aggregate(
                small_dist, sum_query, processes=1, max_retries=0,
                phase_fn=_raise_value_error,
            )
        assert err.value.cause_type == "ValueError"
        assert "ValueError: bad fragment" in err.value.cause
        assert isinstance(err.value.__cause__, ValueError)

    def test_process_path_classifies_error(self, small_dist, sum_query):
        with pytest.raises(FragmentFailedError) as err:
            multiprocessing_aggregate(
                small_dist, sum_query, processes=2, max_retries=0,
                phase_fn=_raise_value_error,
            )
        assert err.value.cause_type == "ValueError"
        assert "ValueError: bad fragment" in err.value.cause

    def test_discarded_retry_errors_are_observable(
        self, small_dist, sum_query, tmp_path
    ):
        """A retried-away error must leave counters and trace instants."""
        marker = tmp_path / "marker"
        tracer = Tracer()
        reg = MetricsRegistry()
        rows = multiprocessing_aggregate(
            small_dist, sum_query, processes=1, max_retries=1,
            phase_fn=functools.partial(_raise_once_then_work, str(marker)),
            tracer=tracer, metrics=reg,
        )
        assert rows  # the retry succeeded
        assert reg.value("mp.retries") == 1
        assert reg.value("mp.errors.KeyError") == 1
        assert reg.value("mp.failed_attempts") == 1
        retries = [
            i for i in tracer.instants if i["name"] == "fragment_retry"
        ]
        assert len(retries) == 1
        assert retries[0]["args"]["error_type"] == "KeyError"
        # The failed attempt's span carries the error classification.
        failed = [
            s for s in tracer.spans
            if s.name.startswith("fragment") and not s.args.get("ok", True)
        ]
        assert len(failed) == 1

    def test_oom_retry_cause_chain(self, small_dist, sum_query):
        with pytest.raises(FragmentFailedError) as err:
            multiprocessing_aggregate(
                small_dist, sum_query, processes=1, max_retries=0,
                memory_budget_bytes=64,
            )
        assert err.value.cause_type == "MemoryExceededError"
        assert isinstance(err.value.__cause__, MemoryExceededError)
