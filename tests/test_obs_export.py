"""Exporters and artifact validation: Chrome trace, JSONL, CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.runner import run_algorithm
from repro.obs import Tracer
from repro.obs.export import to_chrome_trace, to_jsonl, write_chrome_trace
from repro.obs.schema import (
    SchemaError,
    validate_bench_json,
    validate_chrome_trace,
    validate_or_raise,
)
from repro.obs.validate import main as validate_main


@pytest.fixture
def traced_run(small_dist, sum_query):
    tracer = Tracer()
    outcome = run_algorithm("sampling", small_dist, sum_query, tracer=tracer)
    return tracer, outcome


class TestChromeTrace:
    def test_schema_valid(self, traced_run):
        tracer, _ = traced_run
        doc = to_chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []

    def test_thread_metadata_per_track(self, traced_run):
        tracer, _ = traced_run
        doc = to_chrome_trace(tracer, process_name="myproc")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e for e in meta}
        assert names["process_name"]["args"]["name"] == "myproc"
        labels = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert "cluster" in labels
        assert f"node {tracer.spans[1].track}" in labels or len(labels) > 1

    def test_tid_never_negative(self, traced_run):
        tracer, _ = traced_run
        doc = to_chrome_trace(tracer)
        assert all(e["tid"] >= 0 for e in doc["traceEvents"])

    def test_timestamps_are_microseconds(self, traced_run):
        tracer, outcome = traced_run
        doc = to_chrome_trace(tracer)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        horizon = max(e["ts"] + e["dur"] for e in spans)
        assert horizon == pytest.approx(outcome.elapsed_seconds * 1e6)

    def test_unfinished_spans_closed_at_horizon(self):
        tracer = Tracer()
        tracer.begin("never_ended", track=0, t=0.0)
        tracer.complete("done", 0, 0.0, 2.0)
        doc = to_chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        (open_ev,) = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "never_ended"
        ]
        assert open_ev["args"]["unfinished"] is True
        assert open_ev["dur"] == pytest.approx(2.0 * 1e6)

    def test_write_round_trips(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestJsonl:
    def test_every_line_parses(self, traced_run):
        tracer, _ = traced_run
        lines = to_jsonl(tracer)
        assert len(lines) == len(tracer.spans) + len(tracer.instants)
        kinds = {json.loads(line)["type"] for line in lines}
        assert kinds == {"span", "event"}


class TestValidators:
    def test_chrome_validator_flags_garbage(self):
        assert validate_chrome_trace({"nope": 1})
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})

    def test_bench_validator_flags_garbage(self):
        assert validate_bench_json({"schema": "other/9"})
        good = {
            "schema": "repro-bench/1",
            "name": "x",
            "tests": [
                {"nodeid": "a::b", "outcome": "passed", "wall_seconds": 0.1}
            ],
            "figures": [],
            "metrics": {"tests": 1},
        }
        assert validate_bench_json(good) == []

    def test_validate_or_raise(self):
        with pytest.raises(SchemaError) as err:
            validate_or_raise({"bad": True}, "chrome", label="t.json")
        assert "t.json" in str(err.value)

    def test_validate_cli(self, traced_run, tmp_path):
        tracer, _ = traced_run
        good = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(good))
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "not a list"}')
        assert validate_main([str(good)]) == 0
        assert validate_main([str(good), str(bad)]) == 1
        assert validate_main([str(tmp_path / "missing.json")]) == 1
        assert validate_main([]) == 2


class TestTraceCli:
    def test_trace_subcommand_end_to_end(self, tmp_path):
        out = io.StringIO()
        trace_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "t.jsonl"
        code = main(
            [
                "trace",
                "--algorithm", "two_phase",
                "--tuples", "2000",
                "--groups", "16",
                "--nodes", "4",
                "--out", str(trace_path),
                "--jsonl", str(jsonl_path),
            ],
            out=out,
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        assert jsonl_path.exists()
        text = out.getvalue()
        assert "spans" in text
        # Per-phase summary names the Two Phase phases.
        assert "local_aggregation" in text

    def test_no_operator_spans_shrinks_trace(self, tmp_path):
        def span_count(extra):
            out = io.StringIO()
            path = tmp_path / f"t{len(extra)}.json"
            argv = [
                "trace", "--algorithm", "two_phase",
                "--tuples", "2000", "--groups", "16", "--nodes", "4",
                "--out", str(path),
            ] + extra
            assert main(argv, out=out) == 0
            return len(json.loads(path.read_text())["traceEvents"])

        assert span_count(["--no-operator-spans"]) < span_count([])
