"""Tests for the shared algorithm building blocks."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.algorithms.base import (
    SimConfig,
    SpillCharges,
    merge_destination,
    partial_item_bytes,
    raw_item_bytes,
)
from repro.core.query import AggregateQuery
from repro.costmodel.params import SystemParameters
from repro.sim.events import ReadPages, WritePages
from repro.sim.node import NodeContext
from repro.storage.schema import default_schema


@pytest.fixture
def ctx():
    params = SystemParameters.implementation()
    return NodeContext(0, 8, params)


@pytest.fixture
def bq():
    query = AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )
    return query.bind(default_schema())


class TestSimConfig:
    def test_defaults(self):
        cfg = SimConfig()
        assert not cfg.pipeline
        assert cfg.local_method == "hash"
        assert cfg.estimator == "lower_bound"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimConfig().pipeline = True

    def test_invalid_local_method(self):
        with pytest.raises(ValueError):
            SimConfig(local_method="btree")

    def test_invalid_estimator(self):
        with pytest.raises(ValueError):
            SimConfig(estimator="oracle")


class TestItemBytes:
    def test_raw_is_projection(self, bq):
        assert raw_item_bytes(bq) == 16  # gkey + val

    def test_partial_adds_overhead(self, bq):
        assert partial_item_bytes(bq) == raw_item_bytes(bq) + 8


class TestSpillCharges:
    def test_write_then_read_requests(self, ctx):
        spill = SpillCharges(ctx, item_bytes=100)
        spill.on_write(40)  # one page's worth at 4KB pages
        reqs = list(spill.drain())
        assert len(reqs) == 1
        assert isinstance(reqs[0], WritePages)
        assert reqs[0].pages == pytest.approx(4000 / 4096)
        assert reqs[0].tag == "spill_io"

        spill.on_read(40)
        reqs = list(spill.drain())
        assert isinstance(reqs[0], ReadPages)

    def test_drain_is_idempotent(self, ctx):
        spill = SpillCharges(ctx, item_bytes=10)
        spill.on_write(5)
        assert len(list(spill.drain())) == 1
        assert list(spill.drain()) == []

    def test_total_spilled_tracks_writes(self, ctx):
        spill = SpillCharges(ctx, item_bytes=10)
        spill.on_write(5)
        spill.on_write(7)
        spill.on_read(12)
        assert spill.total_spilled == 12


class TestMergeDestination:
    def test_stable_across_nodes(self):
        """Every node must route a key to the same merge node — that is
        what makes the unsynchronized mixed merging correct."""
        params = SystemParameters.implementation()
        dsts = [
            merge_destination(NodeContext(i, 8, params)) for i in range(8)
        ]
        for key in [(k,) for k in range(50)]:
            homes = {dst(key) for dst in dsts}
            assert len(homes) == 1

    def test_in_range(self, ctx):
        dst = merge_destination(ctx)
        for k in range(100):
            assert 0 <= dst((k,)) < 8

    def test_spreads_keys(self, ctx):
        dst = merge_destination(ctx)
        used = {dst((k,)) for k in range(200)}
        assert len(used) == 8
