"""End-to-end property test: every algorithm equals the reference on
arbitrary small relations — arbitrary group counts, value ranges, node
counts and memory budgets."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, default_parameters, run_algorithm
from repro.parallel import reference_aggregate
from repro.storage.partition import round_robin_partition
from repro.storage.relation import DistributedRelation
from repro.storage.schema import default_schema

from tests.conftest import rows_close

QUERY = AggregateQuery(
    group_by=["gkey"],
    aggregates=[
        AggregateSpec("sum", "val"),
        AggregateSpec("count", None),
        AggregateSpec("min", "val"),
        AggregateSpec("max", "val"),
    ],
)

relations = st.builds(
    lambda rows, nodes: DistributedRelation(
        default_schema(),
        round_robin_partition(
            [(k, float(v), "") for k, v in rows], nodes
        ),
    ),
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=-1000, max_value=1000),
        ),
        min_size=1,
        max_size=120,
    ),
    nodes=st.integers(min_value=1, max_value=5),
)


@given(
    dist=relations,
    algorithm=st.sampled_from(sorted(ALGORITHMS)),
    table_entries=st.integers(min_value=1, max_value=64),
)
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_algorithm_matches_reference(dist, algorithm, table_entries):
    params = default_parameters(dist, hash_table_entries=table_entries)
    out = run_algorithm(algorithm, dist, QUERY, params=params)
    expected = reference_aggregate(dist, QUERY)
    assert rows_close(out.rows, expected, tol=1e-9), (
        f"{algorithm} with M={table_entries} on "
        f"{len(dist)} tuples/{dist.num_nodes} nodes"
    )


@given(
    dist=relations,
    table_entries=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_adaptive_two_phase_tiny_memory(dist, table_entries):
    """The stress case: single-digit hash tables force constant switching
    and deep merge-side overflow; results must stay exact."""
    params = default_parameters(dist, hash_table_entries=table_entries)
    out = run_algorithm("adaptive_two_phase", dist, QUERY, params=params)
    assert rows_close(out.rows, reference_aggregate(dist, QUERY))
