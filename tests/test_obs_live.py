"""Live serving telemetry: thread-safe metrics, quantiles, the query
log, the flight recorder, and Prometheus exposition.

The hammer tests pin the thread-safety contract the query service
relies on: concurrent ``inc``/``observe`` lose nothing, and every
``snapshot`` taken mid-storm is internally consistent (a histogram's
``count`` always equals ``sum(counts)``).
"""

import json
import threading

import pytest

from repro.obs.live import (
    FlightRecorder,
    QueryLog,
    fingerprint,
    query_record,
    to_prometheus,
    validate_prometheus,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.schema import (
    QLOG_SCHEMA,
    validate_chrome_trace,
    validate_qlog_record,
)
from repro.obs.tracer import Tracer
from repro.obs.validate import validate_file


# -- quantile estimation ------------------------------------------------------


class TestQuantileFromBuckets:
    def test_empty_distribution_is_zero(self):
        assert quantile_from_buckets((0.1, 1.0), [0, 0, 0], 0.99) == 0.0

    def test_single_bucket(self):
        # Every observation landed in the first bucket: every quantile
        # reports that bucket's upper bound.
        assert quantile_from_buckets((0.1, 1.0), [7, 0, 0], 0.5) == 0.1
        assert quantile_from_buckets((0.1, 1.0), [7, 0, 0], 0.99) == 0.1

    def test_all_overflow(self):
        # Everything beyond the last bound: the observed max is the
        # only honest answer, falling back to the last finite bound.
        assert quantile_from_buckets(
            (0.1, 1.0), [0, 0, 9], 0.5, overflow_value=42.0
        ) == 42.0
        assert quantile_from_buckets((0.1, 1.0), [0, 0, 9], 0.5) == 1.0

    def test_typical_distribution(self):
        bounds = (0.01, 0.1, 1.0, 10.0)
        counts = [50, 30, 15, 4, 1]  # 100 observations, 1 overflow
        assert quantile_from_buckets(bounds, counts, 0.5) == 0.01
        assert quantile_from_buckets(bounds, counts, 0.8) == 0.1
        assert quantile_from_buckets(bounds, counts, 0.95) == 1.0
        assert quantile_from_buckets(bounds, counts, 0.99) == 10.0
        assert quantile_from_buckets(
            bounds, counts, 1.0, overflow_value=55.5
        ) == 55.5

    def test_q_zero_is_first_bucket_with_mass(self):
        assert quantile_from_buckets((1.0, 2.0), [0, 5, 0], 0.0) == 2.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1, 0], 1.5)

    def test_histogram_quantile_uses_observed_max_for_overflow(self):
        h = Histogram("t", buckets=(1.0,))
        h.observe(500.0)
        assert h.quantile(0.99) == 500.0


# -- thread-safety hammers ----------------------------------------------------


def _hammer(target, threads=8):
    workers = [threading.Thread(target=target) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


class TestConcurrentMetrics:
    def test_counter_loses_no_increments(self):
        reg = MetricsRegistry()
        per_thread, threads = 5000, 8

        def work():
            counter = reg.counter("hits")
            for _ in range(per_thread):
                counter.inc()

        _hammer(work, threads)
        assert reg.value("hits") == per_thread * threads

    def test_histogram_consistent_under_concurrent_snapshots(self):
        reg = MetricsRegistry()
        per_thread, threads = 2000, 6
        stop = threading.Event()
        bad_snapshots = []

        def observe():
            h = reg.histogram("lat", buckets=(0.5, 1.5, 2.5))
            for i in range(per_thread):
                h.observe(i % 4)

        def snapshot_loop():
            while not stop.is_set():
                snap = reg.snapshot().get("lat")
                if snap is not None and snap["count"] != sum(snap["counts"]):
                    bad_snapshots.append(snap)

        watcher = threading.Thread(target=snapshot_loop)
        watcher.start()
        _hammer(observe, threads)
        stop.set()
        watcher.join()
        assert bad_snapshots == []
        final = reg.snapshot()["lat"]
        assert final["count"] == per_thread * threads
        assert sum(final["counts"]) == final["count"]
        assert final["total"] == sum(i % 4 for i in range(per_thread)) * threads

    def test_concurrent_merge_loses_nothing(self):
        target = MetricsRegistry()
        threads = 6

        def work():
            local = MetricsRegistry()
            local.counter("n").inc(100)
            h = local.histogram("d", buckets=(1.0, 2.0))
            for v in (0.5, 1.5, 9.0):
                h.observe(v)
            target.merge(local)

        _hammer(work, threads)
        assert target.value("n") == 100 * threads
        snap = target.snapshot()["d"]
        assert snap["count"] == 3 * threads
        assert snap["counts"] == [threads, threads, threads]
        assert snap["max"] == 9.0


# -- Prometheus exposition ----------------------------------------------------


class TestPrometheus:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("svc.admitted").inc(12)
        reg.gauge("svc.queue_depth").set(3)
        h = reg.histogram("svc.latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        return reg

    def test_round_trip_validates(self):
        text = to_prometheus(self._registry())
        assert validate_prometheus(text) == []

    def test_exposition_shape(self):
        lines = to_prometheus(self._registry()).splitlines()
        assert "# TYPE svc_admitted counter" in lines
        assert "svc_admitted 12" in lines
        assert "# TYPE svc_latency_seconds histogram" in lines
        # Cumulative buckets, then +Inf equal to the total count.
        assert 'svc_latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'svc_latency_seconds_bucket{le="1"} 2' in lines
        assert 'svc_latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "svc_latency_seconds_count 3" in lines

    def test_name_collision_gets_suffix(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(1)
        reg.counter("a:b".replace(":", ".") + "_x")  # a.b_x, no clash
        reg.counter("a b").inc(2)  # sanitizes to a_b, colliding with a.b
        text = to_prometheus(reg)
        assert validate_prometheus(text) == []
        assert "# TYPE a_b counter" in text
        assert "# TYPE a_b_2 counter" in text

    def test_parser_rejects_duplicate_family(self):
        text = (
            "# TYPE x counter\nx 1\n"
            "# TYPE x counter\nx 2\n"
        )
        problems = validate_prometheus(text)
        assert any("duplicate" in p for p in problems)

    def test_parser_rejects_non_monotone_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="0.5"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 2.0\nh_count 3\n"
        )
        problems = validate_prometheus(text)
        assert any("not strictly increasing" in p for p in problems)

    def test_parser_rejects_decreasing_cumulative_counts(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 2.0\nh_count 5\n"
        )
        problems = validate_prometheus(text)
        assert any("decrease" in p for p in problems)

    def test_parser_rejects_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 2.0\nh_count 5\n"
        )
        problems = validate_prometheus(text)
        assert any("!= count" in p for p in problems)

    def test_parser_rejects_sample_without_type(self):
        problems = validate_prometheus("orphan 1\n")
        assert any("no preceding TYPE" in p for p in problems)


# -- query log ----------------------------------------------------------------


def _record(qid: int, **overrides) -> dict:
    record = query_record(
        query_id=qid,
        sql="SELECT gkey, SUM(val) FROM r GROUP BY gkey",
        outcome="served",
        queue_wait_seconds=0.001,
        elapsed_seconds=0.25,
        exec_seconds=0.2,
    )
    record.update(overrides)
    return record


class TestQueryLog:
    def test_records_reach_disk_and_validate(self, tmp_path):
        path = tmp_path / "qlog.jsonl"
        qlog = QueryLog(path)
        for i in range(5):
            assert qlog.record(_record(i))
        assert qlog.flush()
        qlog.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        for line in lines:
            assert validate_qlog_record(json.loads(line)) == []
        # The CLI validator dispatches .jsonl lines on their schema key.
        assert validate_file(str(path)) == []

    def test_full_queue_drops_and_counts(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", capacity=2, autostart=False)
        assert qlog.record(_record(1))
        assert qlog.record(_record(2))
        assert not qlog.record(_record(3))
        assert not qlog.record(_record(4))
        assert qlog.dropped == 2
        qlog.close()  # drains the two queued records synchronously
        assert qlog.written == 2
        lines = (tmp_path / "q.jsonl").read_text().splitlines()
        assert [json.loads(l)["query_id"] for l in lines] == [1, 2]

    def test_closed_log_refuses_records(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl")
        qlog.close()
        assert not qlog.record(_record(1))
        assert qlog.dropped == 1

    def test_concurrent_writers(self, tmp_path):
        path = tmp_path / "q.jsonl"
        qlog = QueryLog(path, capacity=10_000)
        per_thread, threads = 200, 8

        def work():
            for i in range(per_thread):
                qlog.record(_record(i))

        _hammer(work, threads)
        assert qlog.flush(timeout=10.0)
        qlog.close()
        lines = path.read_text().splitlines()
        assert len(lines) == per_thread * threads
        assert qlog.dropped == 0
        for line in lines:  # no torn/interleaved writes
            assert json.loads(line)["schema"] == QLOG_SCHEMA

    def test_rejects_bad_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q.jsonl", capacity=0)


class TestQlogSchema:
    def test_valid_record(self):
        assert validate_qlog_record(_record(7)) == []

    def test_shed_record_with_reason(self):
        record = _record(8, outcome="shed", exec_seconds=None,
                         reason="queue_full")
        assert validate_qlog_record(record) == []

    def test_rejects_bad_outcome_and_missing_fields(self):
        assert validate_qlog_record({"schema": QLOG_SCHEMA})
        record = _record(9, outcome="exploded")
        assert any("outcome" in p for p in validate_qlog_record(record))
        record = _record(10, queue_wait_seconds=-1)
        assert any(
            "queue_wait" in p for p in validate_qlog_record(record)
        )
        assert validate_qlog_record([]) == ["record must be an object"]


# -- flight recorder ----------------------------------------------------------


def _traced():
    tracer = Tracer(operator_spans=False)
    span = tracer.begin("query", t=0.0, cat="service")
    tracer.end(span, 0.5)
    return tracer


class TestFlightRecorder:
    def test_ring_is_bounded_newest_first(self):
        recorder = FlightRecorder(entries=3)
        for i in range(6):
            recorder.note(_record(i))
        assert [r["query_id"] for r in recorder.queries()] == [5, 4, 3]
        assert [r["query_id"] for r in recorder.queries(limit=2)] == [5, 4]

    def test_slow_query_captures_valid_trace(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.0)
        assert recorder.note(_record(1), tracer=_traced())
        trace = recorder.trace(1)
        assert trace is not None
        assert validate_chrome_trace(trace) == []

    def test_fast_query_is_not_traced(self):
        recorder = FlightRecorder(slow_threshold_seconds=10.0)
        assert not recorder.note(_record(1), tracer=_traced())
        assert recorder.trace(1) is None

    def test_empty_tracer_is_not_captured(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.0)
        assert not recorder.note(
            _record(1), tracer=Tracer(operator_spans=False)
        )

    def test_none_threshold_disables_capture(self):
        recorder = FlightRecorder(slow_threshold_seconds=None)
        assert not recorder.note(_record(1), tracer=_traced())

    def test_trace_map_is_bounded(self):
        recorder = FlightRecorder(trace_entries=2,
                                  slow_threshold_seconds=0.0)
        for i in range(4):
            recorder.note(_record(i), tracer=_traced())
        assert recorder.trace_ids() == [2, 3]
        assert recorder.trace(0) is None
        assert recorder.trace(3) is not None

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            FlightRecorder(entries=0)
        with pytest.raises(ValueError):
            FlightRecorder(trace_entries=-1)
        with pytest.raises(ValueError):
            FlightRecorder(slow_threshold_seconds=-0.5)


# -- fingerprint --------------------------------------------------------------


class TestFingerprint:
    def test_normalizes_case_and_whitespace(self):
        a = fingerprint("SELECT gkey, SUM(val)  FROM r\n GROUP BY gkey")
        b = fingerprint("select gkey, sum(val) from r group by gkey")
        assert a == b
        assert len(a) == 12

    def test_distinct_sql_distinct_fingerprint(self):
        assert fingerprint("SELECT a FROM r") != fingerprint(
            "SELECT b FROM r"
        )
