"""Unit tests for the bounded hash table and the spilling aggregator."""

import pytest

from repro.core.aggregates import AggregateSpec, make_state_factory
from repro.core.hashtable import BoundedAggregateHashTable, HashAggregator

SPECS = [AggregateSpec("sum", "v"), AggregateSpec("count", None)]


def factory():
    return make_state_factory(SPECS)()


def make_table(max_entries):
    return BoundedAggregateHashTable(
        max_entries, make_state_factory(SPECS)
    )


class TestBoundedTable:
    def test_absorbs_until_full(self):
        t = make_table(2)
        assert t.add_values("a", (1.0, 1))
        assert t.add_values("b", (1.0, 1))
        assert t.is_full
        assert not t.add_values("c", (1.0, 1))

    def test_existing_key_updates_even_when_full(self):
        t = make_table(1)
        assert t.add_values("a", (1.0, 1))
        assert t.add_values("a", (2.0, 1))
        items = dict(t.items())
        assert items["a"].results() == (3.0, 2)

    def test_add_partial_merges(self):
        t = make_table(2)
        p = factory()
        p.update((5.0, 1))
        assert t.add_partial("a", p)
        q = factory()
        q.update((3.0, 1))
        assert t.add_partial("a", q)
        assert dict(t.items())["a"].results() == (8.0, 2)

    def test_add_partial_copies(self):
        """The table must own its states — a caller reusing the partial
        object must not corrupt the table."""
        t = make_table(2)
        p = factory()
        p.update((5.0, 1))
        t.add_partial("a", p)
        p.update((100.0, 1))
        assert dict(t.items())["a"].results() == (5.0, 1)

    def test_add_partial_respects_capacity(self):
        t = make_table(1)
        t.add_values("a", (1.0, 1))
        assert not t.add_partial("b", factory())

    def test_drain_empties(self):
        t = make_table(2)
        t.add_values("a", (1.0, 1))
        drained = t.drain()
        assert set(drained) == {"a"}
        assert len(t) == 0
        assert not t.is_full or t.max_entries == 0

    def test_contains(self):
        t = make_table(2)
        t.add_values("a", (1.0, 1))
        assert "a" in t
        assert "b" not in t

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_table(0)


class TestHashAggregator:
    def _collect(self, agg):
        return {k: s.results() for k, s in agg.finish()}

    def test_no_overflow_below_capacity(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=10)
        for i in range(5):
            agg.add_values(i, (float(i), 1))
        out = self._collect(agg)
        assert len(out) == 5
        assert not agg.overflowed

    def test_overflow_still_correct(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=3)
        for i in range(50):
            agg.add_values(i % 10, (1.0, 1))
        out = self._collect(agg)
        assert len(out) == 10
        assert all(v == (5.0, 5) for v in out.values())
        assert agg.overflowed
        assert agg.spilled_items > 0

    def test_spill_hooks_fire(self):
        writes, reads = [], []
        agg = HashAggregator(
            make_state_factory(SPECS),
            max_entries=2,
            on_spill_write=writes.append,
            on_spill_read=reads.append,
        )
        for i in range(20):
            agg.add_values(i, (1.0, 1))
        list(agg.finish())
        # 18 of 20 keys miss the 2-entry table on the first pass; deeper
        # passes may respill, but writes and reads must always balance.
        assert sum(writes) >= 18
        assert sum(writes) == sum(reads)

    def test_partials_spill_too(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=2)
        for i in range(10):
            p = factory()
            p.update((float(i), 1))
            agg.add_partial(i, p)
        out = self._collect(agg)
        assert len(out) == 10
        assert out[9] == (9.0, 1)

    def test_mixed_raw_and_partials(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=2)
        for i in range(8):
            agg.add_values(i, (1.0, 1))
        for i in range(8):
            p = factory()
            p.update((1.0, 1))
            agg.add_partial(i, p)
        out = self._collect(agg)
        assert all(v == (2.0, 2) for v in out.values())

    def test_deep_overflow_single_entry_table(self):
        agg = HashAggregator(
            make_state_factory(SPECS), max_entries=1, fanout=2
        )
        for i in range(200):
            agg.add_values(i % 40, (1.0, 1))
        out = self._collect(agg)
        assert len(out) == 40
        assert all(v == (5.0, 5) for v in out.values())

    def test_overflow_passes_counted(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=2)
        for i in range(20):
            agg.add_values(i, (1.0, 1))
        list(agg.finish())
        assert agg.overflow_passes >= 1

    def test_fanout_validation(self):
        with pytest.raises(ValueError, match="fanout"):
            HashAggregator(make_state_factory(SPECS), 10, fanout=1)

    def test_existing_group_never_spills(self):
        """Matching tuples always merge in memory (step 1 of Section 2)."""
        agg = HashAggregator(make_state_factory(SPECS), max_entries=1)
        for _ in range(100):
            agg.add_values("only", (1.0, 1))
        assert agg.spilled_items == 0
        out = self._collect(agg)
        assert out["only"] == (100.0, 100)

    def test_in_memory_groups_property(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=3)
        agg.add_values("a", (1.0, 1))
        assert agg.in_memory_groups == 1
