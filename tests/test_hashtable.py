"""Unit tests for the bounded hash table and the spilling aggregator."""

import pytest

import repro.core.hashtable
from repro.core.aggregates import AggregateSpec, make_state_factory
from repro.core.hashtable import BoundedAggregateHashTable, HashAggregator
from repro.resources import (
    MemoryPolicy,
    NodeLedger,
    SpillDepthExceededError,
)

SPECS = [AggregateSpec("sum", "v"), AggregateSpec("count", None)]


def factory():
    return make_state_factory(SPECS)()


def make_table(max_entries):
    return BoundedAggregateHashTable(
        max_entries, make_state_factory(SPECS)
    )


class TestBoundedTable:
    def test_absorbs_until_full(self):
        t = make_table(2)
        assert t.add_values("a", (1.0, 1))
        assert t.add_values("b", (1.0, 1))
        assert t.is_full
        assert not t.add_values("c", (1.0, 1))

    def test_existing_key_updates_even_when_full(self):
        t = make_table(1)
        assert t.add_values("a", (1.0, 1))
        assert t.add_values("a", (2.0, 1))
        items = dict(t.items())
        assert items["a"].results() == (3.0, 2)

    def test_add_partial_merges(self):
        t = make_table(2)
        p = factory()
        p.update((5.0, 1))
        assert t.add_partial("a", p)
        q = factory()
        q.update((3.0, 1))
        assert t.add_partial("a", q)
        assert dict(t.items())["a"].results() == (8.0, 2)

    def test_add_partial_copies(self):
        """The table must own its states — a caller reusing the partial
        object must not corrupt the table."""
        t = make_table(2)
        p = factory()
        p.update((5.0, 1))
        t.add_partial("a", p)
        p.update((100.0, 1))
        assert dict(t.items())["a"].results() == (5.0, 1)

    def test_add_partial_respects_capacity(self):
        t = make_table(1)
        t.add_values("a", (1.0, 1))
        assert not t.add_partial("b", factory())

    def test_drain_empties(self):
        t = make_table(2)
        t.add_values("a", (1.0, 1))
        drained = t.drain()
        assert set(drained) == {"a"}
        assert len(t) == 0
        assert not t.is_full or t.max_entries == 0

    def test_contains(self):
        t = make_table(2)
        t.add_values("a", (1.0, 1))
        assert "a" in t
        assert "b" not in t

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_table(0)


class TestHashAggregator:
    def _collect(self, agg):
        return {k: s.results() for k, s in agg.finish()}

    def test_no_overflow_below_capacity(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=10)
        for i in range(5):
            agg.add_values(i, (float(i), 1))
        out = self._collect(agg)
        assert len(out) == 5
        assert not agg.overflowed

    def test_overflow_still_correct(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=3)
        for i in range(50):
            agg.add_values(i % 10, (1.0, 1))
        out = self._collect(agg)
        assert len(out) == 10
        assert all(v == (5.0, 5) for v in out.values())
        assert agg.overflowed
        assert agg.spilled_items > 0

    def test_spill_hooks_fire(self):
        writes, reads = [], []
        agg = HashAggregator(
            make_state_factory(SPECS),
            max_entries=2,
            on_spill_write=writes.append,
            on_spill_read=reads.append,
        )
        for i in range(20):
            agg.add_values(i, (1.0, 1))
        list(agg.finish())
        # 18 of 20 keys miss the 2-entry table on the first pass; deeper
        # passes may respill, but writes and reads must always balance.
        assert sum(writes) >= 18
        assert sum(writes) == sum(reads)

    def test_partials_spill_too(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=2)
        for i in range(10):
            p = factory()
            p.update((float(i), 1))
            agg.add_partial(i, p)
        out = self._collect(agg)
        assert len(out) == 10
        assert out[9] == (9.0, 1)

    def test_mixed_raw_and_partials(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=2)
        for i in range(8):
            agg.add_values(i, (1.0, 1))
        for i in range(8):
            p = factory()
            p.update((1.0, 1))
            agg.add_partial(i, p)
        out = self._collect(agg)
        assert all(v == (2.0, 2) for v in out.values())

    def test_deep_overflow_single_entry_table(self):
        agg = HashAggregator(
            make_state_factory(SPECS), max_entries=1, fanout=2
        )
        for i in range(200):
            agg.add_values(i % 40, (1.0, 1))
        out = self._collect(agg)
        assert len(out) == 40
        assert all(v == (5.0, 5) for v in out.values())

    def test_overflow_passes_counted(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=2)
        for i in range(20):
            agg.add_values(i, (1.0, 1))
        list(agg.finish())
        assert agg.overflow_passes >= 1

    def test_fanout_validation(self):
        with pytest.raises(ValueError, match="fanout"):
            HashAggregator(make_state_factory(SPECS), 10, fanout=1)

    def test_existing_group_never_spills(self):
        """Matching tuples always merge in memory (step 1 of Section 2)."""
        agg = HashAggregator(make_state_factory(SPECS), max_entries=1)
        for _ in range(100):
            agg.add_values("only", (1.0, 1))
        assert agg.spilled_items == 0
        out = self._collect(agg)
        assert out["only"] == (100.0, 100)

    def test_in_memory_groups_property(self):
        agg = HashAggregator(make_state_factory(SPECS), max_entries=3)
        agg.add_values("a", (1.0, 1))
        assert agg.in_memory_groups == 1


class TestSpillDepthGuard:
    def test_pathological_skew_raises(self, monkeypatch):
        """Total hash collapse must fail loudly, not recurse forever.

        With every key hashing to the same bucket at every depth,
        repartitioning can never shrink the working set; before this
        guard the aggregator silently fell back to an unbounded table.
        """
        monkeypatch.setattr(
            repro.core.hashtable, "stable_hash", lambda _key: 7
        )
        agg = HashAggregator(
            make_state_factory(SPECS), max_entries=1, fanout=2,
            max_depth=4,
        )
        with pytest.raises(SpillDepthExceededError) as info:
            for _ in range(3):
                for i in range(8):
                    agg.add_values(i, (1.0, 1))
            list(agg.finish())
        err = info.value
        assert err.depth == 4
        assert err.max_entries == 1
        # Every spilled item sits in one bucket: maximal skew.
        assert err.largest_bucket_items >= 1
        assert err.bucket_share > 0.0
        assert "skew" in str(err)

    def test_honest_hashing_stays_under_depth(self):
        """The same workload with a real hash finishes fine."""
        agg = HashAggregator(
            make_state_factory(SPECS), max_entries=1, fanout=2,
            max_depth=32,
        )
        for _ in range(3):
            for i in range(8):
                agg.add_values(i, (1.0, 1))
        out = {k: s.results() for k, s in agg.finish()}
        assert len(out) == 8
        assert all(v == (3.0, 3) for v in out.values())

    def test_max_depth_validation(self):
        with pytest.raises(ValueError, match="max_depth"):
            HashAggregator(make_state_factory(SPECS), 10, max_depth=0)


class TestGovernedTable:
    def _ledger(self, budget, **kw):
        return NodeLedger(
            MemoryPolicy(node_budget_bytes=budget, min_table_entries=1,
                         **kw),
            0,
        )

    def test_denial_reads_as_full(self):
        """Budget pressure and a full table are the same event — the
        unification that lets A-2P's switch fire from the governor."""
        ledger = self._ledger(budget=20)
        t = BoundedAggregateHashTable(
            100, make_state_factory(SPECS),
            account=ledger.open("t"), entry_bytes=10,
        )
        assert t.add_values("a", (1.0, 1))
        assert t.add_values("b", (1.0, 1))
        assert not t.add_values("c", (1.0, 1))  # denied, table not full
        assert t.pressure_denials == 1
        assert ledger.pressure_events == 1
        # Existing keys still update under pressure.
        assert t.add_values("a", (2.0, 1))

    def test_progress_floor_forces_admission(self):
        """A starved budget must still admit min_table_entries groups."""
        ledger = NodeLedger(
            MemoryPolicy(node_budget_bytes=1, min_table_entries=3), 0
        )
        t = BoundedAggregateHashTable(
            100, make_state_factory(SPECS),
            account=ledger.open("t"), entry_bytes=10,
        )
        assert t.add_values("a", (1.0, 1))
        assert t.add_values("b", (1.0, 1))
        assert t.add_values("c", (1.0, 1))
        assert not t.add_values("d", (1.0, 1))

    def test_drain_releases_bytes(self):
        ledger = self._ledger(budget=100)
        t = BoundedAggregateHashTable(
            100, make_state_factory(SPECS),
            account=ledger.open("t"), entry_bytes=10,
        )
        t.add_values("a", (1.0, 1))
        t.add_values("b", (1.0, 1))
        assert ledger.used == 20
        t.drain()
        assert ledger.used == 0
        assert ledger.high_water == 20

    def test_governed_aggregator_spills_and_accounts(self):
        ledger = self._ledger(budget=30)
        agg = HashAggregator(
            make_state_factory(SPECS), max_entries=100,
            account=ledger.open("agg"), entry_bytes=10,
            spill_item_bytes=12,
        )
        for i in range(20):
            agg.add_values(i, (1.0, 1))
        assert agg.spilled_items > 0
        assert ledger.spill_bytes == agg.spilled_items * 12
        out = {k: s.results() for k, s in agg.finish()}
        assert len(out) == 20
        assert all(v == (1.0, 1) for v in out.values())

    def test_sealed_after_spill_even_if_budget_frees(self):
        """A key must never be emitted twice: once anything spills, new
        keys keep spilling even when another operator frees budget."""
        ledger = self._ledger(budget=30)
        other = ledger.open("other")
        other.charge(25)
        agg = HashAggregator(
            make_state_factory(SPECS), max_entries=100,
            account=ledger.open("agg"), entry_bytes=10,
        )
        agg.add_values("x", (1.0, 1))  # forced by the progress floor
        agg.add_values("spilled", (1.0, 1))
        assert agg.spilled_items == 1
        other.release(25)  # budget frees up mid-run...
        agg.add_values("spilled", (1.0, 1))  # ...but the key stays out
        out = {k: s.results() for k, s in agg.finish()}
        assert out["spilled"] == (2.0, 2)
        assert len(out) == 2
