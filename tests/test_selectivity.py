"""Unit tests for selectivity sweep helpers."""

import pytest

from repro.workloads.selectivity import groups_sweep, selectivity_sweep


class TestSelectivitySweep:
    def test_spans_full_range(self):
        sweep = selectivity_sweep(10_000, points=10)
        groups = [g for _, g in sweep]
        assert groups[0] == 1
        assert groups[-1] == 5000

    def test_monotone_increasing(self):
        groups = groups_sweep(100_000, points=13)
        assert groups == sorted(groups)
        assert len(groups) == len(set(groups))

    def test_selectivity_matches_groups(self):
        for s, g in selectivity_sweep(10_000, points=8):
            assert s == pytest.approx(g / 10_000)

    def test_small_relation_dedupes(self):
        sweep = selectivity_sweep(16, points=20)
        assert len(sweep) <= 20
        groups = [g for _, g in sweep]
        assert len(groups) == len(set(groups))

    def test_custom_bounds(self):
        sweep = selectivity_sweep(10_000, points=5, low=0.01, high=0.1)
        assert sweep[0][1] == 100
        assert sweep[-1][1] == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            selectivity_sweep(1)
        with pytest.raises(ValueError):
            selectivity_sweep(100, points=1)
        with pytest.raises(ValueError):
            selectivity_sweep(100, low=0.5, high=0.1)
