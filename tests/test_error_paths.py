"""Error paths and guards that the happy-path suites never touch."""

import pytest

from repro.costmodel.params import SystemParameters
from repro.sim.engine import Engine, SimulationError
from repro.sim.node import NodeContext


@pytest.fixture
def params():
    return SystemParameters.paper_default().with_(num_nodes=2)


class TestEngineGuards:
    def test_max_events_backstop(self, params):
        """A send/recv ping-pong loop trips the runaway guard instead of
        hanging forever."""
        engine = Engine(params, max_events=200)
        ctxs = [NodeContext(i, 2, params, engine) for i in range(2)]

        def ping(ctx, peer):
            def program():
                yield ctx.send(peer, "ball")
                while True:
                    yield ctx.recv("ball")
                    yield ctx.send(peer, "ball")

            return program()

        with pytest.raises(SimulationError, match="max_events"):
            engine.run([ping(ctxs[0], 1), ping(ctxs[1], 0)])

    def test_merge_phase_rejects_unknown_kind(self, params):
        """The merge protocol is closed: stray kinds are a bug, loudly."""
        from repro.core.algorithms.base import SimConfig, merge_phase
        from repro.core.aggregates import AggregateSpec
        from repro.core.query import AggregateQuery
        from repro.storage.schema import default_schema

        query = AggregateQuery(
            group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
        )
        bq = query.bind(default_schema())
        engine = Engine(params)
        ctxs = [NodeContext(i, 2, params, engine) for i in range(2)]

        def sender():
            yield ctxs[0].send(1, "mystery", payload=[1], nbytes=16)
            yield ctxs[0].send(1, "eof")

        def merger():
            rows = yield from merge_phase(
                ctxs[1], bq, SimConfig(), expected_eofs=1
            )
            return rows

        with pytest.raises(RuntimeError, match="unexpected message kind"):
            engine.run([sender(), merger()])

    def test_stale_recv_wakeups_are_harmless(self, params):
        """Multiple senders waking one parked receiver must deliver each
        message exactly once (the epoch guard)."""
        engine = Engine(params.with_(num_nodes=3))
        ctxs = [
            NodeContext(i, 3, params, engine) for i in range(3)
        ]

        def sender(ctx):
            def program():
                yield ctx.compute(0.001)
                yield ctx.send(2, "m", payload=ctx.node_id, nbytes=8)

            return program()

        def receiver():
            got = []
            for _ in range(2):
                msg = yield ctxs[2].recv("m")
                got.append(msg.payload)
            return sorted(got)

        results, _ = engine.run(
            [sender(ctxs[0]), sender(ctxs[1]), receiver()]
        )
        assert results[2] == [0, 1]


class TestPublicValidation:
    def test_message_negative_bytes(self):
        from repro.sim.events import Message

        with pytest.raises(ValueError):
            Message(0, 1, "x", nbytes=-1)

    def test_read_pages_negative(self):
        from repro.sim.events import ReadPages

        with pytest.raises(ValueError):
            ReadPages(-1)

    def test_lru_table_validation(self):
        from repro.core.algorithms.streaming_pre_aggregation import (
            LruAggregationTable,
        )

        with pytest.raises(ValueError):
            LruAggregationTable(0, lambda: None)

    def test_figure_result_column_missing(self):
        from repro.bench.harness import FigureResult

        result = FigureResult("f", "t", ["a"])
        with pytest.raises(ValueError):
            result.column("b")
