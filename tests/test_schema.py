"""Unit tests for repro.storage.schema."""

import pytest

from repro.storage.schema import Column, Schema, default_schema


class TestColumn:
    def test_default_size_int(self):
        assert Column("a", "int").size_bytes == 8

    def test_default_size_float(self):
        assert Column("a", "float").size_bytes == 8

    def test_default_size_str(self):
        assert Column("a", "str").size_bytes == 16

    def test_explicit_size(self):
        assert Column("a", "str", size_bytes=42).size_bytes == 42

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown column kind"):
            Column("a", "blob")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Column("a", "int", size_bytes=-1)


class TestSchema:
    def test_len(self):
        s = Schema([Column("a"), Column("b")])
        assert len(s) == 2

    def test_contains(self):
        s = Schema([Column("a")])
        assert "a" in s
        assert "z" not in s

    def test_index_of(self):
        s = Schema([Column("a"), Column("b"), Column("c")])
        assert s.index_of("b") == 1

    def test_index_of_missing_raises_with_names(self):
        s = Schema([Column("a")])
        with pytest.raises(KeyError, match="no column 'z'"):
            s.index_of("z")

    def test_indexes_of(self):
        s = Schema([Column("a"), Column("b"), Column("c")])
        assert s.indexes_of(["c", "a"]) == (2, 0)

    def test_names(self):
        s = Schema([Column("x"), Column("y")])
        assert s.names() == ["x", "y"]

    def test_tuple_bytes(self):
        s = Schema([Column("a", "int"), Column("b", "str", size_bytes=10)])
        assert s.tuple_bytes == 18

    def test_project(self):
        s = Schema([Column("a"), Column("b"), Column("c")])
        assert s.project(["c", "a"]).names() == ["c", "a"]

    def test_projected_bytes(self):
        s = Schema([Column("a", "int"), Column("b", "str", size_bytes=10)])
        assert s.projected_bytes(["a"]) == 8
        assert s.projected_bytes(["a", "b"]) == 18

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([Column("a"), Column("a")])

    def test_column_lookup(self):
        c = Column("b", "float")
        s = Schema([Column("a"), c])
        assert s.column("b") is c


class TestDefaultSchema:
    def test_hundred_byte_tuples(self):
        assert default_schema().tuple_bytes == 100

    def test_custom_payload(self):
        assert default_schema(payload_bytes=10).tuple_bytes == 26

    def test_columns(self):
        assert default_schema().names() == ["gkey", "val", "pad"]
