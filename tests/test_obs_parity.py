"""Observability must not change answers: parity guarantees.

The whole layer is opt-in; these tests pin the contract that a traced
run and an untraced run of the same workload are *bit-identical* (rows
and every metric), for every algorithm, with and without faults, and
that the simulator and the real multiprocessing executor agree.
"""

from __future__ import annotations

import json

import pytest

from repro.core.runner import ALGORITHMS, run_algorithm
from repro.obs import DecisionLedger, MetricsRegistry, Tracer
from repro.parallel import multiprocessing_aggregate
from repro.sim.faults import CrashFault, FaultPlan, Straggler

from tests.conftest import assert_rows_close


def fingerprint(outcome):
    return (
        outcome.rows,
        outcome.elapsed_seconds,
        json.dumps(outcome.metrics.to_dict(), sort_keys=True),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_tracing_off_vs_on_bit_identical(algorithm, small_dist, full_query):
    plain = run_algorithm(algorithm, small_dist, full_query)
    traced = run_algorithm(
        algorithm, small_dist, full_query, tracer=Tracer()
    )
    assert fingerprint(plain) == fingerprint(traced)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_ledger_off_vs_on_bit_identical(algorithm, small_dist, full_query):
    """The decision ledger is observe-only: attaching it changes nothing."""
    plain = run_algorithm(algorithm, small_dist, full_query)
    with_ledger = run_algorithm(
        algorithm, small_dist, full_query, ledger=DecisionLedger()
    )
    assert fingerprint(plain) == fingerprint(with_ledger)


def test_ledger_and_tracer_together_bit_identical(small_dist, full_query):
    plain = run_algorithm("sampling", small_dist, full_query)
    observed = run_algorithm(
        "sampling", small_dist, full_query,
        tracer=Tracer(), ledger=DecisionLedger(),
    )
    assert fingerprint(plain) == fingerprint(observed)


def test_ledger_parity_under_faults(small_dist, sum_query):
    def plan():
        return FaultPlan(
            seed=9,
            crashes=(CrashFault(1, after_tuples=150),),
            message_loss=0.05,
        )

    plain = run_algorithm(
        "adaptive_two_phase", small_dist, sum_query, faults=plan()
    )
    observed = run_algorithm(
        "adaptive_two_phase", small_dist, sum_query, faults=plan(),
        ledger=DecisionLedger(),
    )
    assert fingerprint(plain) == fingerprint(observed)


def test_tracing_parity_under_faults(small_dist, sum_query):
    def plan():
        return FaultPlan(
            seed=9,
            crashes=(CrashFault(1, after_tuples=150),),
            stragglers=(Straggler(0, 1.5),),
            message_loss=0.05,
            read_error_rate=0.05,
        )

    plain = run_algorithm(
        "two_phase", small_dist, sum_query, faults=plan()
    )
    traced = run_algorithm(
        "two_phase", small_dist, sum_query, faults=plan(), tracer=Tracer()
    )
    assert fingerprint(plain) == fingerprint(traced)


def test_mp_observability_does_not_change_rows(small_dist, sum_query):
    plain = multiprocessing_aggregate(small_dist, sum_query, processes=2)
    observed = multiprocessing_aggregate(
        small_dist, sum_query, processes=2,
        tracer=Tracer(), metrics=MetricsRegistry(), profiles=[],
    )
    assert plain == observed


def test_sim_vs_mp_metrics_parity(small_dist, full_query):
    """The two substrates agree on answers and on what they report."""
    sim = run_algorithm("two_phase", small_dist, full_query)
    reg = MetricsRegistry()
    profiles = []
    rows = multiprocessing_aggregate(
        small_dist, full_query, processes=2,
        metrics=reg, profiles=profiles,
    )
    assert_rows_close(rows, sim.rows)

    sim_reg = MetricsRegistry.from_cluster_metrics(sim.metrics)
    # Both registries use the same typed-handle namespace and report the
    # same work shape: one fragment/node per partition, every group out.
    assert reg.value("mp.fragments") == small_dist.num_nodes
    assert sim_reg.histogram("sim.node_busy_seconds").count == (
        small_dist.num_nodes
    )
    assert reg.value("mp.groups_output") == len(rows)
    assert reg.value("mp.attempts") == small_dist.num_nodes
    assert "mp.retries" not in reg  # clean run creates no retry handles
    assert len(profiles) == small_dist.num_nodes
    for profile in profiles:
        assert profile.wall_seconds >= 0.0
        assert profile.max_rss_bytes > 0
    # Snapshots of both registries serialize the same way.
    json.dumps(reg.snapshot())
    json.dumps(sim_reg.snapshot())
