"""Unit tests for the TPC-D-flavoured workload."""

import pytest

from repro.parallel import reference_aggregate
from repro.workloads.tpcd import (
    LINEITEM_SCHEMA,
    TPCD_QUERIES,
    generate_lineitem,
    q1_pricing_summary,
    q_distinct_orders,
    q_partkey_volume,
    tpcd_query,
)


class TestGenerator:
    def test_row_count_and_nodes(self):
        dist = generate_lineitem(1000, 4, seed=0)
        assert len(dist) == 1000
        assert dist.num_nodes == 4

    def test_schema_width_near_100_bytes(self):
        assert 90 <= LINEITEM_SCHEMA.tuple_bytes <= 110

    def test_deterministic(self):
        a = generate_lineitem(500, 2, seed=9)
        b = generate_lineitem(500, 2, seed=9)
        assert a.all_rows() == b.all_rows()

    def test_flags_domain(self):
        dist = generate_lineitem(500, 2, seed=0)
        idx = LINEITEM_SCHEMA.index_of("returnflag")
        assert {r[idx] for r in dist.all_rows()} <= {"A", "N", "R"}

    def test_orderkey_multiplicity(self):
        dist = generate_lineitem(4000, 2, seed=0, parts_per_order=8.0)
        idx = LINEITEM_SCHEMA.index_of("orderkey")
        distinct = len({r[idx] for r in dist.all_rows()})
        assert distinct < 1000  # ~500 orders expected


class TestQueries:
    def test_q1_is_low_cardinality(self):
        dist = generate_lineitem(2000, 4, seed=0)
        rows = reference_aggregate(dist, q1_pricing_summary())
        assert 1 <= len(rows) <= 6  # |returnflag| × |linestatus|

    def test_q1_aggregate_sanity(self):
        dist = generate_lineitem(2000, 4, seed=0)
        rows = reference_aggregate(dist, q1_pricing_summary())
        for row in rows:
            # columns: rf, ls, sum_qty, sum_base, avg_qty, avg_price,
            #          avg_disc, count
            assert row[2] > 0 and row[7] > 0
            assert 1 <= row[4] <= 50   # avg quantity within domain

    def test_partkey_is_high_cardinality(self):
        dist = generate_lineitem(2000, 4, seed=0)
        rows = reference_aggregate(dist, q_partkey_volume())
        assert len(rows) > 500

    def test_distinct_orders_matches_orderkeys(self):
        dist = generate_lineitem(2000, 4, seed=0)
        rows = reference_aggregate(dist, q_distinct_orders())
        idx = LINEITEM_SCHEMA.index_of("orderkey")
        assert len(rows) == len({r[idx] for r in dist.all_rows()})

    def test_lookup_by_name(self):
        for name in TPCD_QUERIES:
            assert tpcd_query(name).aggregates

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown TPC-D query"):
            tpcd_query("q99")
