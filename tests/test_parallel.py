"""Tests for the reference executor and the multiprocessing executor."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import multiprocessing_aggregate, reference_aggregate
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


class TestReferenceAggregate:
    def test_simple_groupby(self):
        schema = Schema([Column("k", "int"), Column("v", "float")])
        rel = Relation(
            schema, [(1, 1.0), (1, 2.0), (2, 5.0)]
        )
        query = AggregateQuery(
            group_by=["k"],
            aggregates=[
                AggregateSpec("sum", "v"),
                AggregateSpec("count", None),
            ],
        )
        assert reference_aggregate(rel, query) == [
            (1, 3.0, 2),
            (2, 5.0, 1),
        ]

    def test_accepts_distributed(self, small_dist, sum_query):
        rows = reference_aggregate(small_dist, sum_query)
        assert len(rows) == 16

    def test_where(self):
        schema = Schema([Column("k", "int"), Column("v", "float")])
        rel = Relation(schema, [(1, 1.0), (1, 100.0)])
        query = AggregateQuery(
            group_by=["k"],
            aggregates=[AggregateSpec("count", None)],
            where=lambda r: r["v"] < 10,
        )
        assert reference_aggregate(rel, query) == [(1, 1)]

    def test_rejects_other_types(self, sum_query):
        with pytest.raises(TypeError):
            reference_aggregate([(1, 2)], sum_query)

    def test_sorted_output(self, small_dist, sum_query):
        rows = reference_aggregate(small_dist, sum_query)
        assert rows == sorted(rows)

    def test_empty_relation(self):
        schema = Schema([Column("k", "int"), Column("v", "float")])
        query = AggregateQuery(
            group_by=["k"], aggregates=[AggregateSpec("sum", "v")]
        )
        assert reference_aggregate(Relation(schema, []), query) == []


class TestMultiprocessingAggregate:
    def test_matches_reference_inprocess(self, full_query):
        dist = generate_uniform(3000, 50, 4, seed=0)
        got = multiprocessing_aggregate(dist, full_query, processes=1)
        assert_rows_close(got, reference_aggregate(dist, full_query))

    def test_matches_reference_with_pool(self, sum_query):
        dist = generate_uniform(2000, 30, 4, seed=1)
        got = multiprocessing_aggregate(dist, sum_query, processes=2)
        assert_rows_close(got, reference_aggregate(dist, sum_query))

    def test_default_sizing_runs(self, sum_query, small_dist):
        got = multiprocessing_aggregate(small_dist, sum_query)
        assert len(got) == 16

    def test_states_pickle_across_processes(self, full_query):
        """All six aggregate states must survive the pool boundary."""
        dist = generate_uniform(800, 10, 2, seed=2)
        got = multiprocessing_aggregate(dist, full_query, processes=2)
        assert_rows_close(got, reference_aggregate(dist, full_query))
