"""Unit + property tests for the sort-based aggregation engine."""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import AggregateSpec, make_state_factory
from repro.core.runner import default_parameters, run_algorithm
from repro.core.sortagg import SortAggregator
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close

SPECS = [AggregateSpec("sum", "v"), AggregateSpec("count", None)]


def make(max_entries, **kw):
    return SortAggregator(make_state_factory(SPECS), max_entries, **kw)


class TestSortAggregator:
    def test_in_memory_path(self):
        agg = make(100)
        for i in (3, 1, 2, 1):
            agg.add_values(i, (float(i), 1))
        out = list(agg.finish())
        assert [k for k, _ in out] == [1, 2, 3]  # sorted order
        assert dict((k, s.results()) for k, s in out)[1] == (2.0, 2)
        assert not agg.overflowed

    def test_runs_spill_and_merge(self):
        agg = make(4)
        for i in range(40):
            agg.add_values(i % 10, (1.0, 1))
        out = {k: s.results() for k, s in agg.finish()}
        assert len(out) == 10
        assert all(v == (4.0, 4) for v in out.values())
        assert agg.run_count >= 2

    def test_output_sorted_even_with_runs(self):
        agg = make(3)
        for i in (9, 1, 8, 2, 7, 3, 6, 4, 5, 0):
            agg.add_values(i, (1.0, 1))
        keys = [k for k, _ in agg.finish()]
        assert keys == sorted(keys)
        assert len(keys) == 10

    def test_duplicate_keys_across_runs_merge(self):
        agg = make(2)
        for _ in range(3):
            for key in ("a", "b", "c"):
                agg.add_values(key, (1.0, 1))
        out = {k: s.results() for k, s in agg.finish()}
        assert out == {"a": (3.0, 3), "b": (3.0, 3), "c": (3.0, 3)}

    def test_spill_hooks(self):
        writes, reads = [], []
        agg = make(2, on_spill_write=writes.append, on_spill_read=reads.append)
        for i in range(10):
            agg.add_values(i, (1.0, 1))
        list(agg.finish())
        assert sum(writes) == sum(reads) == 10  # all runs spooled+read

    def test_partials(self):
        agg = make(2)
        factory = make_state_factory(SPECS)
        for i in range(6):
            state = factory()
            state.update((float(i), 1))
            agg.add_partial(i, state)
        out = {k: s.results() for k, s in agg.finish()}
        assert out[5] == (5.0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            make(0)


streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=150,
)


@given(streams, st.integers(min_value=1, max_value=6))
@settings(max_examples=60)
def test_sort_matches_dict_groupby(stream, max_entries):
    agg = make(max_entries)
    for key, value in stream:
        agg.add_values(key, (value, 1))
    out = {k: s.results() for k, s in agg.finish()}
    sums, counts = defaultdict(int), defaultdict(int)
    for key, value in stream:
        sums[key] += value
        counts[key] += 1
    assert out == {k: (sums[k], counts[k]) for k in sums}


@given(streams, st.integers(min_value=1, max_value=6))
@settings(max_examples=40)
def test_sort_output_is_key_ordered(stream, max_entries):
    agg = make(max_entries)
    for key, value in stream:
        agg.add_values(key, (value, 1))
    keys = [k for k, _ in agg.finish()]
    assert keys == sorted(keys)


class TestSortEngineInAlgorithms:
    @pytest.mark.parametrize(
        "algorithm", ["two_phase", "centralized_two_phase",
                      "repartitioning"]
    )
    def test_sort_local_method_matches_reference(
        self, algorithm, sum_query
    ):
        dist = generate_uniform(2000, 300, 4, seed=5)
        params = default_parameters(dist, hash_table_entries=32)
        out = run_algorithm(
            algorithm, dist, sum_query, params=params, local_method="sort"
        )
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_invalid_method_rejected(self, sum_query, small_dist):
        with pytest.raises(ValueError, match="local_method"):
            run_algorithm(
                "two_phase", small_dist, sum_query, local_method="merge"
            )

    def test_sort_vs_hash_same_rows(self, sum_query):
        dist = generate_uniform(1500, 100, 4, seed=6)
        a = run_algorithm("two_phase", dist, sum_query,
                          local_method="sort")
        b = run_algorithm("two_phase", dist, sum_query,
                          local_method="hash")
        # Summation order differs between engines: compare with float
        # tolerance, not bit-for-bit.
        assert_rows_close(a.rows, b.rows)
