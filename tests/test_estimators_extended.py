"""Tests for the species estimators and the Flajolet–Martin sketch."""

import numpy as np
import pytest

from repro.sampling.estimator import (
    ESTIMATORS,
    FlajoletMartinSketch,
    chao1_estimate,
    distinct_lower_bound,
    estimate_groups,
    jackknife_estimate,
)


def sample_from(num_groups, sample_size, seed=0):
    rng = np.random.default_rng(seed)
    return [int(k) for k in rng.integers(0, num_groups, sample_size)]


class TestChao1:
    def test_empty(self):
        assert chao1_estimate([]) == 0.0

    def test_saturated_sample_equals_distinct(self):
        """Every group seen many times: no singletons, no correction."""
        keys = [i for i in range(10) for _ in range(20)]
        assert chao1_estimate(keys) == 10

    def test_at_least_lower_bound(self):
        keys = sample_from(500, 300)
        assert chao1_estimate(keys) >= distinct_lower_bound(keys)

    def test_improves_on_lower_bound_for_undersampled(self):
        """With a sample far smaller than the population, Chao1 must
        recover more of the truth than the plain distinct count."""
        true = 2000
        keys = sample_from(true, 1000, seed=1)
        lower = distinct_lower_bound(keys)
        chao = chao1_estimate(keys)
        assert lower < true
        assert abs(chao - true) < abs(lower - true)

    def test_all_singletons_bias_corrected(self):
        keys = list(range(50))  # f2 = 0
        est = chao1_estimate(keys)
        assert est == 50 + 50 * 49 / 2


class TestJackknife:
    def test_empty(self):
        assert jackknife_estimate([]) == 0.0

    def test_at_least_lower_bound(self):
        keys = sample_from(500, 300, seed=2)
        assert jackknife_estimate(keys) >= distinct_lower_bound(keys)

    def test_no_singletons_equals_distinct(self):
        keys = [i for i in range(10) for _ in range(5)]
        assert jackknife_estimate(keys) == 10

    def test_bounded_by_double_distinct(self):
        keys = sample_from(1000, 500, seed=3)
        assert jackknife_estimate(keys) <= 2 * distinct_lower_bound(keys)


class TestDispatch:
    def test_all_estimators_run(self):
        keys = sample_from(100, 200)
        for name in ESTIMATORS:
            assert estimate_groups(keys, name) > 0

    def test_unknown_estimator(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            estimate_groups([1], "psychic")

    def test_default_is_lower_bound(self):
        keys = [1, 1, 2]
        assert estimate_groups(keys) == 2.0


class TestFlajoletMartin:
    @pytest.mark.parametrize("true", [200, 2000, 20_000])
    def test_estimate_within_factor_two(self, true):
        sketch = FlajoletMartinSketch(64)
        for i in range(true):
            sketch.add(("key", i))
        estimate = sketch.estimate()
        assert true / 2 <= estimate <= true * 2

    def test_duplicates_do_not_inflate(self):
        sketch = FlajoletMartinSketch(64)
        for _ in range(50):
            for i in range(100):
                sketch.add(i)
        assert sketch.estimate() < 400

    def test_merge_is_union(self):
        a, b = FlajoletMartinSketch(64), FlajoletMartinSketch(64)
        for i in range(4000):
            a.add(i)
        for i in range(2000, 6000):
            b.add(i)
        a.merge(b)
        assert 6000 / 2.5 <= a.estimate() <= 6000 * 2.5

    def test_merge_width_mismatch(self):
        with pytest.raises(ValueError, match="widths"):
            FlajoletMartinSketch(8).merge(FlajoletMartinSketch(16))

    def test_empty_estimate_zero(self):
        assert FlajoletMartinSketch(16).estimate() == 0.0

    def test_deterministic(self):
        a, b = FlajoletMartinSketch(32), FlajoletMartinSketch(32)
        for i in range(1000):
            a.add(i)
            b.add(i)
        assert a.estimate() == b.estimate()

    def test_validation(self):
        with pytest.raises(ValueError):
            FlajoletMartinSketch(0)
