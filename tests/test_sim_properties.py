"""Property tests of the discrete-event engine itself.

The engine's guarantees — determinism, conservation of messages, FIFO
channels, chronological bus allocation — are what the algorithm results
rest on, so they get their own hypothesis coverage with randomized
communication patterns.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.params import NetworkKind, SystemParameters
from repro.sim.engine import Engine
from repro.sim.node import NodeContext

# A script is a list of per-node actions: ("compute", ms) or
# ("send", dst_offset, blocks).  Every node ends with an eof to node 0,
# and node 0 collects everything.
actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("compute"),
            st.integers(min_value=1, max_value=20),
        ),
        st.tuples(
            st.just("send"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        ),
    ),
    max_size=12,
)
scripts = st.lists(actions, min_size=2, max_size=4)


def run_scripted(scripts_list, network_kind):
    num_nodes = len(scripts_list)
    params = SystemParameters.paper_default().with_(
        num_nodes=num_nodes, network=network_kind
    )
    engine = Engine(params)
    sent_counter = {"n": 0}

    def make_program(node_id, script):
        ctx = NodeContext(node_id, num_nodes, params, engine)

        def program():
            for action in script:
                if action[0] == "compute":
                    yield ctx.compute(action[1] / 1000.0)
                else:
                    _, dst_offset, blocks = action
                    dst = (node_id + dst_offset) % num_nodes
                    if dst != node_id:
                        sent_counter["n"] += 1
                        yield ctx.send(
                            dst,
                            "data",
                            payload=(node_id, blocks),
                            nbytes=blocks * params.block_bytes,
                        )
            # Everyone reports eof to node 0.
            yield ctx.send(0, "eof")
            if node_id != 0:
                return []
            # Node 0 drains: all data messages + N eofs.
            got = []
            eofs = 0
            while eofs < num_nodes:
                msg = yield ctx.recv()
                if msg.kind == "eof":
                    eofs += 1
                else:
                    got.append(msg.payload)
            # Anything addressed elsewhere stays in peers' mailboxes —
            # that is fine; we only assert what node 0 must see.
            return got

        return program()

    generators = [
        make_program(i, script) for i, script in enumerate(scripts_list)
    ]
    results, metrics = engine.run(generators)
    return results, metrics, sent_counter["n"]


@given(scripts)
@settings(max_examples=50, deadline=None)
def test_runs_are_deterministic(scripts_list):
    a = run_scripted(scripts_list, NetworkKind.HIGH_BANDWIDTH)
    b = run_scripted(scripts_list, NetworkKind.HIGH_BANDWIDTH)
    assert a[0] == b[0]
    assert [n.finish_time for n in a[1].nodes] == [
        n.finish_time for n in b[1].nodes
    ]


@given(scripts)
@settings(max_examples=50, deadline=None)
def test_messages_conserved(scripts_list):
    _results, metrics, _sent = run_scripted(
        scripts_list, NetworkKind.HIGH_BANDWIDTH
    )
    total_sent = sum(n.messages_sent for n in metrics.nodes)
    total_received = sum(n.messages_received for n in metrics.nodes)
    # Node 0 consumes its mail; others may leave mail unread, but nobody
    # can receive more than was sent.
    assert total_received <= total_sent


@given(scripts)
@settings(max_examples=30, deadline=None)
def test_bus_busy_time_matches_blocks_carried(scripts_list):
    """The serial bus is busy for exactly m_l per block it carries —
    no time lost, none double counted."""
    _results, metrics, _ = run_scripted(
        scripts_list, NetworkKind.LIMITED_BANDWIDTH
    )
    params = SystemParameters.paper_default()
    expected = metrics.network_blocks * params.m_l
    assert metrics.network_busy_seconds == pytest.approx(expected)


@given(scripts)
@settings(max_examples=30, deadline=None)
def test_limited_bandwidth_never_faster(scripts_list):
    fast = run_scripted(scripts_list, NetworkKind.HIGH_BANDWIDTH)
    slow = run_scripted(scripts_list, NetworkKind.LIMITED_BANDWIDTH)
    assert slow[1].makespan >= fast[1].makespan - 1e-9
