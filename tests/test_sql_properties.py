"""Property tests for the SQL front-end.

Two directions: generated *valid* queries must parse into queries whose
execution matches the reference executor; generated *garbage* must raise
ParseError/LexError, never crash with anything else.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import reference_aggregate
from repro.sql import ParseError, parse_query
from repro.sql.lexer import LexError
from repro.storage.partition import round_robin_partition
from repro.storage.relation import DistributedRelation
from repro.storage.schema import default_schema

FUNCS = ["SUM", "AVG", "MIN", "MAX", "COUNT"]

agg_items = st.lists(
    st.sampled_from(FUNCS).map(
        lambda f: f"{f}(*)" if f == "COUNT" else f"{f}(val)"
    ),
    min_size=1,
    max_size=4,
)
comparators = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
thresholds = st.integers(min_value=0, max_value=100)


@st.composite
def valid_queries(draw):
    aggs = draw(agg_items)
    grouped = draw(st.booleans())
    select = (["gkey"] if grouped else []) + aggs
    sql = "SELECT " + ", ".join(select) + " FROM r"
    if draw(st.booleans()):
        op = draw(comparators)
        value = draw(thresholds)
        sql += f" WHERE val {op} {value}"
    if grouped:
        sql += " GROUP BY gkey"
    return sql


@st.composite
def small_relations(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=50,
        )
    )
    nodes = draw(st.integers(min_value=1, max_value=3))
    data = [(k, float(v), "") for k, v in rows]
    return DistributedRelation(
        default_schema(), round_robin_partition(data, nodes)
    )


@given(valid_queries(), small_relations())
@settings(max_examples=80, deadline=None)
def test_parsed_queries_execute_like_reference(sql, dist):
    _table, query = parse_query(sql)
    rows = reference_aggregate(dist, query)
    # Rebuild the same semantics by hand from the parsed query and
    # compare — the reference executor is the oracle for both sides, so
    # this is really asserting the parse produced a *runnable* query
    # whose arity and grouping are coherent.
    assert isinstance(rows, list)
    width = len(query.group_by) + len(query.aggregates)
    for row in rows:
        assert len(row) == width
    if query.group_by and rows:
        keys = [row[0] for row in rows]
        assert keys == sorted(set(keys))


@given(valid_queries())
@settings(max_examples=80)
def test_valid_queries_always_parse(sql):
    table, query = parse_query(sql)
    assert table == "r"
    assert query.aggregates


@given(st.text(max_size=60))
@settings(max_examples=150)
def test_garbage_never_crashes_unexpectedly(text):
    try:
        parse_query(text)
    except (ParseError, LexError):
        pass  # the two sanctioned failure modes


@given(valid_queries())
@settings(max_examples=40)
def test_parse_is_deterministic(sql):
    a = parse_query(sql)
    b = parse_query(sql)
    assert a[0] == b[0]
    assert a[1].group_by == b[1].group_by
    assert [s.output_name for s in a[1].aggregates] == [
        s.output_name for s in b[1].aggregates
    ]
