"""Edge cases every algorithm must survive: empty fragments, empty
results, single tuples, all-filtered inputs, lopsided placements."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, default_parameters, run_algorithm
from repro.parallel import reference_aggregate
from repro.storage.relation import DistributedRelation
from repro.storage.schema import default_schema

from tests.conftest import assert_rows_close

pytestmark = pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))


def dist_of(*fragments):
    return DistributedRelation(default_schema(), list(fragments))


def row(key, val=1.0):
    return (key, val, "")


class TestEmptiness:
    def test_some_nodes_empty(self, algorithm, sum_query):
        dist = dist_of(
            [row(1), row(2)],
            [],
            [row(1), row(3)],
            [],
        )
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_single_tuple_relation(self, algorithm, sum_query):
        dist = dist_of([row(7, 3.5)], [], [])
        out = run_algorithm(algorithm, dist, sum_query)
        assert out.rows == [(7, 3.5)]

    def test_where_filters_everything(self, algorithm):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("sum", "val")],
            where=lambda r: False,
        )
        dist = dist_of([row(1), row(2)], [row(3)])
        out = run_algorithm(algorithm, dist, query)
        assert out.rows == []

    def test_having_filters_everything(self, algorithm):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("sum", "val")],
            having=lambda r: False,
        )
        dist = dist_of([row(1), row(2)], [row(3)])
        out = run_algorithm(algorithm, dist, query)
        assert out.rows == []
        assert out.elapsed_seconds > 0  # the work still happened


class TestExtremePlacements:
    def test_everything_on_one_node(self, algorithm, sum_query):
        dist = dist_of([row(i % 5) for i in range(200)], [], [], [])
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_each_node_disjoint_groups(self, algorithm, sum_query):
        dist = dist_of(
            [row(1)] * 10, [row(2)] * 10, [row(3)] * 10, [row(4)] * 10
        )
        out = run_algorithm(algorithm, dist, sum_query)
        assert out.num_groups == 4

    def test_every_tuple_its_own_group(self, algorithm, sum_query):
        """S = 1: pure duplicate elimination with zero duplicates."""
        dist = dist_of(
            [row(i) for i in range(0, 40)],
            [row(i) for i in range(40, 80)],
        )
        out = run_algorithm(algorithm, dist, sum_query)
        assert out.num_groups == 80


class TestMinimalMemory:
    def test_one_entry_tables(self, algorithm, sum_query):
        dist = dist_of(
            [row(i % 7) for i in range(50)],
            [row(i % 7) for i in range(50)],
        )
        params = default_parameters(dist, hash_table_entries=1)
        out = run_algorithm(algorithm, dist, sum_query, params=params)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))


class TestStringKeys:
    def test_string_group_keys(self, algorithm):
        from repro.storage.schema import Column, Schema

        schema = Schema(
            [Column("name", "str"), Column("v", "float")]
        )
        dist = DistributedRelation(
            schema,
            [
                [("apple", 1.0), ("pear", 2.0)],
                [("apple", 3.0), ("plum", 4.0)],
            ],
        )
        query = AggregateQuery(
            group_by=["name"], aggregates=[AggregateSpec("sum", "v")]
        )
        out = run_algorithm(algorithm, dist, query)
        assert out.rows == [("apple", 4.0), ("pear", 2.0), ("plum", 4.0)]
