"""Property tests over the analytical models' parameter space."""

from hypothesis import given, settings, strategies as st

from repro.costmodel import MODEL_FUNCTIONS, model_cost
from repro.costmodel.params import NetworkKind, SystemParameters

selectivities = st.floats(min_value=1e-7, max_value=0.5)
node_counts = st.integers(min_value=1, max_value=128)
networks = st.sampled_from(list(NetworkKind))


@given(selectivities, node_counts, networks)
@settings(max_examples=80, deadline=None)
def test_all_models_positive_everywhere(selectivity, nodes, network):
    params = SystemParameters.paper_default().with_(
        num_nodes=nodes, network=network
    )
    for name in MODEL_FUNCTIONS:
        breakdown = model_cost(name, params, selectivity)
        assert breakdown.total_seconds > 0, (name, selectivity, nodes)
        assert all(v >= 0 for v in breakdown.components.values())


@given(selectivities, networks)
@settings(max_examples=50, deadline=None)
def test_costs_monotone_in_relation_size(selectivity, network):
    """Doubling the relation never makes any algorithm faster."""
    small = SystemParameters.paper_default().with_(network=network)
    big = small.with_(num_tuples=small.num_tuples * 2)
    for name in MODEL_FUNCTIONS:
        assert (
            model_cost(name, big, selectivity).total_seconds
            >= model_cost(name, small, selectivity).total_seconds - 1e-9
        ), name


@given(selectivities)
@settings(max_examples=50, deadline=None)
def test_slow_network_never_cheaper(selectivity):
    fast = SystemParameters.paper_default()
    slow = fast.with_(network=NetworkKind.LIMITED_BANDWIDTH)
    for name in MODEL_FUNCTIONS:
        assert (
            model_cost(name, slow, selectivity).total_seconds
            >= model_cost(name, fast, selectivity).total_seconds - 1e-9
        ), name


@given(selectivities)
@settings(max_examples=50, deadline=None)
def test_pipeline_never_costlier(selectivity):
    """Removing scan/store I/O cannot increase any model's cost."""
    params = SystemParameters.paper_default()
    for name in ("centralized_two_phase", "two_phase", "repartitioning"):
        with_io = MODEL_FUNCTIONS[name](params, selectivity)
        pipeline = MODEL_FUNCTIONS[name](params, selectivity,
                                         pipeline=True)
        assert pipeline.total_seconds <= with_io.total_seconds + 1e-9


@given(st.floats(min_value=1e-7, max_value=0.5),
       st.floats(min_value=1.01, max_value=4.0))
@settings(max_examples=50, deadline=None)
def test_more_memory_never_hurts_static_algorithms(selectivity, factor):
    """For the non-adaptive algorithms more memory only reduces spill."""
    params = SystemParameters.paper_default()
    bigger = params.with_(
        hash_table_entries=round(params.hash_table_entries * factor)
    )
    for name in ("centralized_two_phase", "two_phase", "repartitioning",
                 "sampling"):
        assert (
            model_cost(name, bigger, selectivity).total_seconds
            <= model_cost(name, params, selectivity).total_seconds + 1e-9
        ), name


def test_more_memory_can_hurt_adaptive_two_phase():
    """Pinned insight: when S_l ≈ 1 every 'partial' stands for a single
    tuple, so the longer A-2P stays in 2P mode (bigger M), the more
    wasted local work it does before switching — more memory makes it
    *slower* in the mid-range.  (With small M it switches early and
    behaves like Repartitioning, the per-tuple winner there.)"""
    params = SystemParameters.paper_default()
    s = 0.03125  # S·N = 1: local aggregation accomplishes nothing
    small = model_cost("adaptive_two_phase", params, s).total_seconds
    big = model_cost(
        "adaptive_two_phase",
        params.with_(hash_table_entries=params.hash_table_entries * 2),
        s,
    ).total_seconds
    assert big > small


def test_adaptive_two_phase_continuous_at_switch_boundary():
    """A-2P's cost must not jump at the exact overflow point."""
    params = SystemParameters.paper_default()
    # The switch kicks in when S_l·|R_i| > M: S·N·(|R|/N) = S·|R| > M·N
    # ... locally: S_l·|R_i| = min(S·N,1)·|R|/N. Solve for the boundary.
    boundary = params.hash_table_entries / params.num_tuples
    below = model_cost(
        "adaptive_two_phase", params, boundary * 0.999
    ).total_seconds
    above = model_cost(
        "adaptive_two_phase", params, boundary * 1.001
    ).total_seconds
    assert abs(above - below) < 0.05 * below
