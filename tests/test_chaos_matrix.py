"""Chaos matrix: every algorithm × every fault class stays exact.

The acceptance bar of the fault-injection work: injecting a single-node
crash mid-phase-1 must leave every algorithm completing with the exact
sequential-reference answer (modulo float summation order) and with
``reexecuted_tuples > 0`` on some survivor.  Message loss and
duplication must never change an answer, only timings.
"""

import pytest

from repro.core.runner import run_algorithm
from repro.parallel import reference_aggregate
from repro.sim.faults import CrashFault, FaultPlan, Straggler

from tests.conftest import assert_rows_close

ALGORITHMS = (
    "centralized_two_phase",
    "two_phase",
    "repartitioning",
    "sampling",
    "adaptive_two_phase",
    "adaptive_repartitioning",
    "optimized_two_phase",
    "streaming_pre_aggregation",
)

SCENARIOS = {
    "lossy_network": FaultPlan(seed=1, message_loss=0.15,
                               message_duplication=0.05),
    "node_crash": FaultPlan(seed=2,
                            crashes=(CrashFault(2, after_tuples=200),)),
    "crash_on_lossy_network": FaultPlan(
        seed=3,
        crashes=(CrashFault(2, after_tuples=200),),
        message_loss=0.1,
        read_error_rate=0.05,
    ),
    "full_chaos": FaultPlan(
        seed=4,
        crashes=(CrashFault(1, after_tuples=300),),
        stragglers=(Straggler(3, 2.0),),
        message_loss=0.1,
        message_duplication=0.05,
        read_error_rate=0.05,
    ),
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_algorithm_survives_scenario(
    algorithm, scenario, small_dist, sum_query
):
    plan = SCENARIOS[scenario]
    expected = reference_aggregate(small_dist, sum_query)
    out = run_algorithm(algorithm, small_dist, sum_query, faults=plan)
    assert_rows_close(out.rows, expected)
    if plan.crashes:
        crashed = [c.node_id for c in plan.crashes]
        assert out.metrics.crashed_nodes == crashed
        assert out.metrics.total_reexecuted_tuples > 0
        # The dead node's fragment was re-read by a survivor.
        takeovers = out.events_named("takeover")
        assert len(takeovers) == len(crashed)


@pytest.mark.parametrize(
    "algorithm", ("centralized_two_phase", "sampling")
)
def test_coordinator_crash_fails_over(algorithm, small_dist, sum_query):
    """Killing node 0 — the coordinator — hands the role to a survivor."""
    expected = reference_aggregate(small_dist, sum_query)
    plan = FaultPlan(crashes=(CrashFault(0, after_tuples=150),))
    out = run_algorithm(algorithm, small_dist, sum_query, faults=plan)
    assert_rows_close(out.rows, expected)
    assert out.metrics.crashed_nodes == [0]
    failovers = out.events_named("coordinator_failover")
    assert len(failovers) == 1
    assert failovers[0].detail["old"] == 0
    assert failovers[0].detail["new"] != 0


def test_full_query_survives_crash(small_dist, full_query):
    """All six aggregate functions stay exact through a recovery."""
    expected = reference_aggregate(small_dist, full_query)
    plan = FaultPlan(crashes=(CrashFault(3, after_tuples=250),))
    out = run_algorithm(
        "two_phase", small_dist, full_query, faults=plan
    )
    assert_rows_close(out.rows, expected)
    assert out.metrics.total_reexecuted_tuples > 0
