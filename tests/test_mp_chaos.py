"""Real-process chaos matrix for the persistent worker pool.

Every scenario here injects faults into *real* worker processes —
SIGKILL at dispatch, SIGSTOP/CONT limplock, per-row slowdown, injected
exceptions, shm-segment loss — driven by the same seedable
:class:`repro.sim.faults.FaultPlan` that drives the simulator.  The
contract under test is brutal and simple: whatever the plan throws at
the pool, the results must be *exactly equal* to the fault-free run and
zero ``/dev/shm`` segments may survive.

Also covers the health machinery the faults exercise: eager heartbeat
detection of wedged workers, speculative re-execution with
first-result-wins and ledger verdicts, poison-fragment quarantine, and
the pool circuit breaker's rebuild-then-degrade ladder.
"""

import functools
import glob
import os
import random
import time

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.obs.decisions import (
    SPECULATIVE_EXECUTION,
    VERDICT_CORRECT,
    DecisionLedger,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    FragmentFailedError,
    WorkerFailure,
    multiprocessing_aggregate,
    pool_breaker_state,
    reset_pool_breaker,
)
from repro.parallel import mp_executor
from repro.parallel.mp_executor import _local_phase
from repro.sim.faults import CrashFault, FaultPlan, Straggler, WorkerStall
from repro.workloads.generator import generate_uniform

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not mounted"
)


def _segments():
    return glob.glob("/dev/shm/" + mp_executor.SHM_PREFIX + "*")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Chaos or not, every exit path must be segment-clean."""
    assert _segments() == []
    yield
    assert _segments() == [], "chaos run leaked shared-memory segments"


@pytest.fixture(autouse=True)
def fresh_breaker():
    """Breaker state is module-global; isolate every test."""
    reset_pool_breaker()
    yield
    reset_pool_breaker()


@pytest.fixture
def dist():
    return generate_uniform(num_tuples=2400, num_groups=60, num_nodes=4, seed=21)


@pytest.fixture
def query():
    return AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )


# Worker-side helpers must be module-level (picklable).

def _exit_on_marker_row(marker_row, job):
    rows, _query, _schema = job
    if rows and tuple(rows[0]) == tuple(marker_row):
        os._exit(23)  # hard death, every attempt: a poison fragment
    return _local_phase(job)


def _always_exit(job):
    os._exit(29)


# Each plan is pinned to a seed whose injection schedule was verified to
# recover within the default retry budget (some seeds legitimately
# exhaust retries — e.g. seed 8 of the "everything" plan lands error +
# shm-loss + kill on one fragment's every attempt; that is correct
# behaviour but not what this matrix pins).
PLANS = {
    "kill": FaultPlan(seed=11, crashes=(CrashFault(1, at_time=0.01),)),
    "limplock": FaultPlan(seed=11, worker_stalls=(WorkerStall(0, 0.8),)),
    "slow": FaultPlan(seed=11, stragglers=(Straggler(2, 8.0),)),
    "error": FaultPlan(seed=4, read_error_rate=0.5),
    "shm_loss": FaultPlan(seed=1, message_loss=0.4),
    "everything": FaultPlan(
        seed=1,
        crashes=(CrashFault(3, at_time=0.01),),
        stragglers=(Straggler(2, 6.0),),
        worker_stalls=(WorkerStall(0, 0.6),),
        read_error_rate=0.3,
        message_loss=0.3,
    ),
}


class TestChaosMatrix:
    """kill / limplock / slow / error / shm-loss × speculation on/off."""

    @pytest.mark.parametrize("speculate", [False, True],
                             ids=["spec-off", "spec-on"])
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_results_equal_fault_free(self, dist, query, plan_name,
                                      speculate):
        baseline = multiprocessing_aggregate(dist, query, processes=2)
        log = []
        got = multiprocessing_aggregate(
            dist, query, processes=2, timeout=30,
            faults=PLANS[plan_name], faults_log=log, speculate=speculate,
        )
        assert got == baseline  # bit-identical, not merely close
        assert log, "plan injected nothing — the scenario tested nothing"

    def test_fault_log_is_deterministic(self, dist, query):
        runs = []
        for _ in range(2):
            log = []
            multiprocessing_aggregate(
                dist, query, processes=2, timeout=30,
                faults=PLANS["everything"], faults_log=log,
            )
            runs.append(log)
        assert runs[0] == runs[1]

    def test_faults_require_pool_strategy(self, dist, query):
        with pytest.raises(ValueError, match="strategy='pool'"):
            multiprocessing_aggregate(
                dist, query, processes=2, strategy="spawn",
                faults=PLANS["kill"],
            )

    def test_shm_loss_reencodes_segment(self, dist, query):
        metrics = MetricsRegistry()
        got = multiprocessing_aggregate(
            dist, query, processes=2, timeout=30,
            faults=PLANS["shm_loss"], metrics=metrics,
        )
        assert got == multiprocessing_aggregate(dist, query, processes=2)
        # The unlinked segment surfaced as FileNotFoundError and the
        # retry shipped a fresh encoding — not a silent inline fallback.
        assert metrics.value("mp.shm.reencoded") >= 1
        assert metrics.value("mp.errors.FileNotFoundError") >= 1


class TestHeartbeats:
    def test_wedged_worker_detected_before_timeout(self, dist, query):
        """A 30 s limplock is cut short by heartbeat loss, not the 60 s
        job timeout: the run finishes in seconds with correct results."""
        plan = FaultPlan(seed=11, worker_stalls=(WorkerStall(1, 30.0),))
        metrics = MetricsRegistry()
        start = time.monotonic()
        got = multiprocessing_aggregate(
            dist, query, processes=2, timeout=60, faults=plan,
            heartbeat_interval=0.1, heartbeat_timeout=0.5,
            metrics=metrics,
        )
        assert time.monotonic() - start < 15
        assert got == multiprocessing_aggregate(dist, query, processes=2)
        assert metrics.value("mp.heartbeat.lost") == 1
        assert metrics.value("mp.errors.HeartbeatLost") == 1

    def test_slow_worker_emits_progress_beats(self, dist, query):
        """A limping (but alive) worker keeps beating: the dispatcher
        sees progress instead of declaring it dead."""
        plan = FaultPlan(seed=11, stragglers=(Straggler(2, 50.0),))
        metrics = MetricsRegistry()
        got = multiprocessing_aggregate(
            dist, query, processes=2, timeout=60, faults=plan,
            heartbeat_interval=0.05, metrics=metrics,
        )
        assert got == multiprocessing_aggregate(dist, query, processes=2)
        assert metrics.value("mp.heartbeat.beats") >= 1
        with pytest.raises(KeyError):
            metrics.value("mp.heartbeat.lost")


class TestSpeculation:
    def test_backup_rescues_straggler_and_ledger_records_verdict(self):
        dist = generate_uniform(
            num_tuples=12000, num_groups=60, num_nodes=4, seed=3
        )
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
        )
        baseline = multiprocessing_aggregate(dist, query, processes=4)
        plan = FaultPlan(seed=3, stragglers=(Straggler(1, 40.0),))
        metrics = MetricsRegistry()
        ledger = DecisionLedger()
        got = multiprocessing_aggregate(
            dist, query, processes=4, timeout=60, faults=plan,
            speculate=True, speculation_multiplier=2.0,
            speculation_min_seconds=0.05,
            metrics=metrics, ledger=ledger,
        )
        assert got == baseline
        assert metrics.value("mp.speculative.launched") >= 1
        assert metrics.value("mp.speculative.backup_wins") >= 1
        assert metrics.value("mp.speculative.cancelled") >= 1
        events = ledger.events_of(SPECULATIVE_EXECUTION)
        assert len(events) >= 1
        verdicts = [e.truth for e in events if e.truth]
        assert any(
            t["backup_won"] and t["verdict"] == VERDICT_CORRECT
            for t in verdicts
        )
        # The decision payload carries enough to audit the trigger.
        data = events[0].data
        assert data["elapsed_seconds"] >= data["threshold_seconds"]

    def test_speculation_requires_pool_strategy(self, dist, query):
        with pytest.raises(ValueError, match="speculat"):
            multiprocessing_aggregate(
                dist, query, processes=2, strategy="spawn", speculate=True
            )


class TestQuarantine:
    def test_poison_fragment_fails_fast_with_cause_chain(self, query):
        dist = generate_uniform(900, 12, 3, seed=4)
        marker_row = dist.fragments[2].relation.rows[0]
        fn = functools.partial(_exit_on_marker_row, marker_row)
        metrics = MetricsRegistry()
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, query, processes=2, phase_fn=fn,
                max_retries=10, poison_threshold=2, metrics=metrics,
            )
        err = info.value
        assert err.fragment_index == 2
        assert err.cause_type == "PoisonFragment"
        assert "poison fragment: killed 2 worker(s)" in err.cause
        assert "died without a result" in err.cause  # the chain, inline
        assert isinstance(err.__cause__, WorkerFailure)
        assert err.__cause__.error_type == "WorkerDied"
        assert metrics.value("mp.quarantine.poisoned") == 1
        assert metrics.value("mp.quarantine.worker_deaths") == 2
        # Quarantine fired well before the 10-retry budget ran out.
        assert err.attempts <= 2

    def test_healthy_fragments_salvaged(self, query):
        dist = generate_uniform(900, 12, 3, seed=4)
        marker_row = dist.fragments[2].relation.rows[0]
        fn = functools.partial(_exit_on_marker_row, marker_row)
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, query, processes=2, phase_fn=fn,
                max_retries=10, poison_threshold=2,
            )
        # partial_results carries the work that did complete.
        assert 2 not in info.value.partial_results


class TestCircuitBreaker:
    def test_rebuild_once_then_degrade_to_spawn(self, dist, query):
        # Zero backoff: the third failing run may rebuild immediately,
        # preserving the original rebuild-once-then-degrade sequence.
        reset_pool_breaker(threshold=2, rebuild_backoff_seconds=0.0)

        def fail_once():
            with pytest.raises(FragmentFailedError):
                multiprocessing_aggregate(
                    dist, query, processes=2, max_retries=0,
                    phase_fn=_always_exit,
                )

        fail_once()
        assert pool_breaker_state().consecutive_infra_failures == 1
        fail_once()
        assert pool_breaker_state().consecutive_infra_failures == 2
        assert not pool_breaker_state().degraded

        # Third call trips the rebuild: the shared pool is torn down and
        # reforked before dispatch.
        old_pool = mp_executor._get_shared_pool()
        metrics = MetricsRegistry()
        with pytest.raises(FragmentFailedError):
            multiprocessing_aggregate(
                dist, query, processes=2, max_retries=0,
                phase_fn=_always_exit, metrics=metrics,
            )
        assert mp_executor._get_shared_pool() is not old_pool
        assert pool_breaker_state().rebuilds == 1
        assert metrics.value("mp.breaker.rebuilds") == 1

        # Still failing after the rebuild: degrade pool -> spawn.
        fail_once()
        assert pool_breaker_state().degraded

        # A degraded run takes the spawn path (no pool forks), still
        # produces correct results, and surfaces the state in metrics.
        pool = mp_executor._get_shared_pool()
        spawned_before = pool.spawned
        metrics = MetricsRegistry()
        got = multiprocessing_aggregate(
            dist, query, processes=2, metrics=metrics
        )
        assert got == multiprocessing_aggregate(
            dist, query, processes=2, strategy="spawn"
        )
        assert pool.spawned == spawned_before
        assert metrics.value("mp.breaker.degraded_runs") == 1
        assert metrics.value("mp.breaker.degraded") == 1

        # Only an operator reset restores pooled dispatch.
        reset_pool_breaker()
        assert not pool_breaker_state().degraded

    def test_success_resets_consecutive_failures(self, dist, query):
        reset_pool_breaker(threshold=2)
        with pytest.raises(FragmentFailedError):
            multiprocessing_aggregate(
                dist, query, processes=2, max_retries=0,
                phase_fn=_always_exit,
            )
        assert pool_breaker_state().consecutive_infra_failures == 1
        multiprocessing_aggregate(dist, query, processes=2)
        assert pool_breaker_state().consecutive_infra_failures == 0

    def test_user_errors_do_not_trip_breaker(self, dist, query):
        from tests.test_mp_executor_faults import _always_raise

        reset_pool_breaker(threshold=2)
        for _ in range(3):
            with pytest.raises(FragmentFailedError):
                multiprocessing_aggregate(
                    dist, query, processes=2, max_retries=0,
                    phase_fn=_always_raise,
                )
        # RuntimeError is the user's bug, not pool sickness.
        assert pool_breaker_state().consecutive_infra_failures == 0
        assert not pool_breaker_state().degraded


class TestBreakerBackoffAndState:
    """Unit coverage for the backoff schedule and the state gauge."""

    def _breaker(self, **kw):
        from repro.parallel.mp_executor import PoolCircuitBreaker

        kw.setdefault("rng", random.Random(7))
        return PoolCircuitBreaker(**kw)

    def test_rebuild_waits_for_backoff(self):
        b = self._breaker(threshold=1, rebuild_backoff_seconds=30.0)
        b.record_failure("WorkerDied")
        # Open, but the rebuild is scheduled in the future: not yet due.
        assert b.state == mp_executor.BREAKER_OPEN
        assert not b.should_rebuild()
        assert not b.take_rebuild()
        lo = b.rebuild_backoff_seconds
        hi = lo * (1 + b.backoff_jitter)
        delay = b.rebuild_not_before - time.monotonic()
        assert 0 < delay <= hi + 0.1
        assert delay >= lo * 0.5  # sanity: same order as configured

    def test_backoff_doubles_per_rebuild_and_caps(self):
        b = self._breaker(
            threshold=1, rebuild_backoff_seconds=2.0,
            rebuild_backoff_cap_seconds=5.0, backoff_jitter=0.0,
        )
        assert b._next_backoff() == 2.0
        b.note_rebuild()
        assert b._next_backoff() == 4.0
        b.note_rebuild()
        assert b._next_backoff() == 5.0  # capped

    def test_jitter_is_seeded_and_bounded(self):
        a = self._breaker(
            threshold=1, rebuild_backoff_seconds=1.0,
            backoff_jitter=0.5, rng=random.Random(99),
        )
        b = self._breaker(
            threshold=1, rebuild_backoff_seconds=1.0,
            backoff_jitter=0.5, rng=random.Random(99),
        )
        da, db = a._next_backoff(), b._next_backoff()
        assert da == db  # same seed, same schedule
        assert 1.0 <= da <= 1.5

    def test_take_rebuild_claims_once(self):
        b = self._breaker(threshold=1, rebuild_backoff_seconds=0.0)
        b.record_failure("HeartbeatLost")
        assert b.take_rebuild()
        assert not b.take_rebuild()  # already claimed
        assert b.rebuilds == 1
        assert b.state == mp_executor.BREAKER_HALF_OPEN

    def test_state_transitions_and_codes(self):
        b = self._breaker(threshold=2, rebuild_backoff_seconds=0.0)
        assert b.state == mp_executor.BREAKER_CLOSED
        assert b.state_code() == 0
        b.record_failure("WorkerDied")
        assert b.state == mp_executor.BREAKER_CLOSED
        b.record_failure("WorkerDied")
        assert b.state == mp_executor.BREAKER_OPEN
        assert b.state_code() == 2
        assert b.take_rebuild()
        assert b.state == mp_executor.BREAKER_HALF_OPEN
        assert b.state_code() == 1
        b.record_success()
        assert b.state == mp_executor.BREAKER_CLOSED
        # Degraded is terminal-open until an operator reset.
        b.record_failure("WorkerDied")
        b.record_failure("WorkerDied")
        assert b.take_rebuild()
        b.record_failure("WorkerDied")
        b.record_failure("WorkerDied")
        assert b.degraded
        assert b.state == mp_executor.BREAKER_OPEN

    def test_state_gauge_exported_from_pool_run(self, dist, query):
        reset_pool_breaker()
        metrics = MetricsRegistry()
        multiprocessing_aggregate(dist, query, processes=2, metrics=metrics)
        assert metrics.value("mp.breaker.state") == 0
