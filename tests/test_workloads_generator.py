"""Unit tests for the uniform and Zipf generators."""

import numpy as np
import pytest

from repro.workloads.generator import (
    generate_uniform,
    generate_zipf,
    selectivity_to_groups,
)


class TestSelectivityToGroups:
    def test_basic(self):
        assert selectivity_to_groups(0.5, 1000) == 500

    def test_minimum_one_group(self):
        assert selectivity_to_groups(1e-9, 1000) == 1

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            selectivity_to_groups(0.0, 10)
        with pytest.raises(ValueError):
            selectivity_to_groups(1.5, 10)


class TestGenerateUniform:
    def test_exact_group_count(self):
        dist = generate_uniform(1000, 37, 4, seed=0)
        keys = {row[0] for row in dist.all_rows()}
        assert len(keys) == 37
        assert keys == set(range(37))

    def test_total_tuples(self):
        dist = generate_uniform(1001, 10, 4, seed=0)
        assert len(dist) == 1001

    def test_round_robin_balance(self):
        dist = generate_uniform(1002, 10, 4, seed=0)
        sizes = dist.tuples_per_node()
        assert max(sizes) - min(sizes) <= 1

    def test_group_frequencies_near_uniform(self):
        dist = generate_uniform(1000, 10, 4, seed=0)
        counts = {}
        for row in dist.all_rows():
            counts[row[0]] = counts.get(row[0], 0) + 1
        assert set(counts.values()) == {100}

    def test_deterministic_by_seed(self):
        a = generate_uniform(500, 10, 2, seed=42)
        b = generate_uniform(500, 10, 2, seed=42)
        assert a.all_rows() == b.all_rows()

    def test_different_seeds_differ(self):
        a = generate_uniform(500, 10, 2, seed=1)
        b = generate_uniform(500, 10, 2, seed=2)
        assert a.all_rows() != b.all_rows()

    def test_no_shuffle_deals_round_robin(self):
        dist = generate_uniform(100, 10, 2, seed=0, shuffle=False)
        rows = dist.all_rows()
        # Without shuffling, key of tuple i is i % 10 before placement.
        frag0 = dist.fragment(0).relation.rows
        assert [r[0] for r in frag0[:5]] == [0, 2, 4, 6, 8]

    def test_hash_placement_colocates_groups(self):
        dist = generate_uniform(400, 8, 4, seed=0, placement="hash")
        for frag in dist.fragments:
            keys_here = {r[0] for r in frag.relation.rows}
            for other in dist.fragments:
                if other.node_id == frag.node_id:
                    continue
                assert not (
                    keys_here & {r[0] for r in other.relation.rows}
                )

    def test_random_placement_keeps_all_rows(self):
        dist = generate_uniform(300, 5, 3, seed=0, placement="random")
        assert len(dist) == 300

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            generate_uniform(10, 2, 2, placement="sorted")

    def test_more_groups_than_tuples_rejected(self):
        with pytest.raises(ValueError):
            generate_uniform(10, 11, 2)

    def test_tuple_width_is_100_bytes(self):
        dist = generate_uniform(10, 2, 2)
        assert dist.schema.tuple_bytes == 100

    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError):
            generate_uniform(10, 0, 2)


class TestGenerateZipf:
    def test_exact_group_count(self):
        dist = generate_zipf(2000, 50, 4, alpha=1.5, seed=0)
        assert len({r[0] for r in dist.all_rows()}) == 50

    def test_skewed_frequencies(self):
        dist = generate_zipf(5000, 50, 4, alpha=1.5, seed=0)
        counts = np.zeros(50)
        for row in dist.all_rows():
            counts[row[0]] += 1
        # Rank 0 should dominate the tail under alpha=1.5.
        assert counts[0] > 5 * counts[25:].mean()

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            generate_zipf(100, 5, 2, alpha=0.0)

    def test_total_preserved(self):
        assert len(generate_zipf(777, 10, 3, seed=1)) == 777


class TestColumnarGeneration:
    """Block-born fragments must decode to exactly the legacy rows."""

    @pytest.mark.parametrize("placement", ["round_robin", "hash", "random"])
    @pytest.mark.parametrize("key_format", [None, "g{:06d}"])
    def test_uniform_blocks_decode_to_legacy_rows(
        self, placement, key_format
    ):
        kwargs = dict(seed=9, placement=placement, key_format=key_format)
        cols = generate_uniform(1500, 40, 4, **kwargs)
        rows = generate_uniform(1500, 40, 4, columnar=False, **kwargs)
        for cf, rf in zip(cols.fragments, rows.fragments):
            assert cf.relation.rows == rf.relation.rows

    @pytest.mark.parametrize("placement", ["round_robin", "hash", "random"])
    @pytest.mark.parametrize("key_format", [None, "g{:06d}"])
    def test_zipf_blocks_decode_to_legacy_rows(self, placement, key_format):
        kwargs = dict(
            alpha=1.3, seed=9, placement=placement, key_format=key_format
        )
        cols = generate_zipf(1500, 40, 4, **kwargs)
        rows = generate_zipf(1500, 40, 4, columnar=False, **kwargs)
        for cf, rf in zip(cols.fragments, rows.fragments):
            assert cf.relation.rows == rf.relation.rows

    def test_fragments_are_block_born(self):
        from repro.storage.relation import BlockRelation

        dist = generate_uniform(200, 10, 2, seed=0)
        for frag in dist.fragments:
            assert isinstance(frag.relation, BlockRelation)
            # The decoding view is lazy: nothing materialized yet.
            assert frag.relation._rows is None

    def test_str_keys_are_dictionary_coded(self):
        dist = generate_uniform(300, 25, 2, seed=0, key_format="g{:04d}")
        frag = dist.fragments[0].relation
        assert frag.block.schema.columns[0].kind == "str"
        # code == group id: the dictionary indexes groups directly.
        assert frag.block.dictionaries[0].values == [
            f"g{g:04d}" for g in range(25)
        ]
        assert frag.rows[0][0] == frag.block.dictionaries[0].values[
            int(frag.block.columns[0][0])
        ]

    def test_head_decodes_only_the_prefix(self):
        dist = generate_uniform(400, 10, 2, seed=3)
        frag = dist.fragments[0].relation
        head = frag.head(7)
        assert frag._rows is None  # prefix decode, no full materialize
        assert head == frag.rows[:7]
