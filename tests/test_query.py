"""Unit tests for the query model and its schema binding."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.storage.schema import Column, Schema, default_schema


@pytest.fixture
def schema():
    return Schema(
        [
            Column("k1", "int"),
            Column("k2", "str", size_bytes=4),
            Column("v", "float"),
            Column("pad", "str", size_bytes=80),
        ]
    )


class TestAggregateQuery:
    def test_requires_aggregates(self):
        with pytest.raises(ValueError, match="at least one aggregate"):
            AggregateQuery(group_by=["k1"], aggregates=[])

    def test_scalar(self):
        q = AggregateQuery(
            group_by=[], aggregates=[AggregateSpec("count", None)]
        )
        assert q.is_scalar

    def test_output_names(self):
        q = AggregateQuery(
            group_by=["k1"],
            aggregates=[
                AggregateSpec("sum", "v"),
                AggregateSpec("count", None, alias="n"),
            ],
        )
        assert q.output_names() == ["k1", "sum(v)", "n"]

    def test_group_by_tuple_normalized(self):
        q = AggregateQuery(
            group_by=("k1",), aggregates=[AggregateSpec("sum", "v")]
        )
        assert q.group_by == ("k1",)


class TestBoundQuery:
    def test_key_of(self, schema):
        q = AggregateQuery(
            group_by=["k2", "k1"], aggregates=[AggregateSpec("sum", "v")]
        )
        bq = q.bind(schema)
        assert bq.key_of((7, "x", 1.0, "")) == ("x", 7)

    def test_scalar_key_is_empty_tuple(self, schema):
        q = AggregateQuery(
            group_by=[], aggregates=[AggregateSpec("sum", "v")]
        )
        bq = q.bind(schema)
        assert bq.key_of((7, "x", 1.0, "")) == ()

    def test_values_of(self, schema):
        q = AggregateQuery(
            group_by=["k1"],
            aggregates=[
                AggregateSpec("sum", "v"),
                AggregateSpec("count", None),
            ],
        )
        bq = q.bind(schema)
        assert bq.values_of((7, "x", 2.5, "")) == (2.5, 1)

    def test_matches_without_where(self, schema):
        q = AggregateQuery(
            group_by=["k1"], aggregates=[AggregateSpec("sum", "v")]
        )
        assert q.bind(schema).matches((1, "a", 0.0, ""))

    def test_where_predicate_sees_column_names(self, schema):
        q = AggregateQuery(
            group_by=["k1"],
            aggregates=[AggregateSpec("sum", "v")],
            where=lambda row: row["v"] > 1.0,
        )
        bq = q.bind(schema)
        assert bq.matches((1, "a", 2.0, ""))
        assert not bq.matches((1, "a", 0.5, ""))

    def test_projected_row_roundtrip(self, schema):
        q = AggregateQuery(
            group_by=["k1", "k2"],
            aggregates=[
                AggregateSpec("sum", "v"),
                AggregateSpec("count", None),
            ],
        )
        bq = q.bind(schema)
        projected = bq.projected_row((7, "x", 2.5, ""))
        key, values = bq.split_projected(projected)
        assert key == (7, "x")
        assert values == (2.5, 1)

    def test_projected_bytes_excludes_padding(self, schema):
        q = AggregateQuery(
            group_by=["k1"], aggregates=[AggregateSpec("sum", "v")]
        )
        bq = q.bind(schema)
        assert bq.projected_bytes == 16  # k1 (8) + v (8), no pad

    def test_projectivity_matches_paper_default(self):
        """gkey + val over a 100-byte tuple: p = 16%, the Table 1 value."""
        schema = default_schema()
        q = AggregateQuery(
            group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
        )
        assert q.bind(schema).projectivity == pytest.approx(0.16)

    def test_projected_bytes_counts_shared_column_once(self, schema):
        q = AggregateQuery(
            group_by=["v"], aggregates=[AggregateSpec("sum", "v")]
        )
        assert q.bind(schema).projected_bytes == 8

    def test_count_star_only_ships_counter(self, schema):
        q = AggregateQuery(
            group_by=[], aggregates=[AggregateSpec("count", None)]
        )
        assert q.bind(schema).projected_bytes == 8

    def test_result_row(self, schema):
        q = AggregateQuery(
            group_by=["k1"], aggregates=[AggregateSpec("count", None)]
        )
        bq = q.bind(schema)
        from repro.core.aggregates import GroupState

        state = GroupState(q.aggregates)
        state.update((1,))
        assert bq.result_row((7,), state) == (7, 1)

    def test_unknown_column_raises(self, schema):
        q = AggregateQuery(
            group_by=["missing"], aggregates=[AggregateSpec("sum", "v")]
        )
        with pytest.raises(KeyError):
            q.bind(schema)
