"""Property tests: the spilling aggregator equals a plain dict GROUP BY."""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.core.aggregates import AggregateSpec, make_state_factory
from repro.core.hashtable import HashAggregator

SPECS = [
    AggregateSpec("sum", "v"),
    AggregateSpec("count", None),
    AggregateSpec("min", "v"),
]

streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),   # key
        st.integers(min_value=-1000, max_value=1000),  # value
    ),
    max_size=200,
)


def reference(stream):
    sums = defaultdict(int)
    counts = defaultdict(int)
    mins: dict = {}
    for key, value in stream:
        sums[key] += value
        counts[key] += 1
        if key not in mins or value < mins[key]:
            mins[key] = value
    return {
        k: (sums[k], counts[k], mins[k]) for k in sums
    }


@given(streams, st.integers(min_value=1, max_value=8),
       st.integers(min_value=2, max_value=5))
@settings(max_examples=60)
def test_aggregator_matches_dict_groupby(stream, max_entries, fanout):
    agg = HashAggregator(
        make_state_factory(SPECS), max_entries=max_entries, fanout=fanout
    )
    for key, value in stream:
        agg.add_values(key, (value, 1, value))
    out = {k: s.results() for k, s in agg.finish()}
    assert out == reference(stream)


@given(streams, st.integers(min_value=1, max_value=4))
@settings(max_examples=40)
def test_each_key_emitted_exactly_once(stream, max_entries):
    agg = HashAggregator(make_state_factory(SPECS), max_entries=max_entries)
    for key, value in stream:
        agg.add_values(key, (value, 1, value))
    keys = [k for k, _ in agg.finish()]
    assert len(keys) == len(set(keys))
    assert set(keys) == {k for k, _ in stream}


@given(streams, streams, st.integers(min_value=1, max_value=4))
@settings(max_examples=40)
def test_partials_path_matches_raw_path(stream_a, stream_b, max_entries):
    """Feeding pre-aggregated partials gives the same totals as raw."""
    # Pre-aggregate stream_a per key into partial states.
    partials: dict = {}
    factory = make_state_factory(SPECS)
    for key, value in stream_a:
        state = partials.setdefault(key, factory())
        state.update((value, 1, value))

    agg = HashAggregator(factory, max_entries=max_entries)
    for key, state in partials.items():
        agg.add_partial(key, state)
    for key, value in stream_b:
        agg.add_values(key, (value, 1, value))
    out = {k: s.results() for k, s in agg.finish()}
    assert out == reference(stream_a + stream_b)


@given(streams)
@settings(max_examples=30)
def test_spill_write_read_counts_balance(stream):
    """Everything spooled out is read back exactly once."""
    writes, reads = [], []
    agg = HashAggregator(
        make_state_factory(SPECS),
        max_entries=2,
        on_spill_write=writes.append,
        on_spill_read=reads.append,
    )
    for key, value in stream:
        agg.add_values(key, (value, 1, value))
    list(agg.finish())
    assert sum(writes) == sum(reads)
