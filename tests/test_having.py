"""HAVING clause: evaluated after grouping, at every merge site."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, run_algorithm
from repro.parallel import multiprocessing_aggregate, reference_aggregate
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


@pytest.fixture
def having_query():
    """Groups with at least 100 tuples (half the groups qualify)."""
    return AggregateQuery(
        group_by=["gkey"],
        aggregates=[
            AggregateSpec("count", None, alias="n"),
            AggregateSpec("sum", "val", alias="total"),
        ],
        having=lambda row: row["gkey"] % 2 == 0,
    )


class TestHavingReference:
    def test_filters_result_rows(self, having_query):
        dist = generate_uniform(2000, 16, 4, seed=0)
        rows = reference_aggregate(dist, having_query)
        assert len(rows) == 8
        assert all(row[0] % 2 == 0 for row in rows)

    def test_having_on_aggregate_value(self):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("count", None, alias="n")],
            having=lambda row: row["n"] >= 100,
        )
        dist = generate_uniform(2000, 16, 4, seed=0)
        rows = reference_aggregate(dist, query)
        # 2000/16 = 125 tuples/group: every group passes.
        assert len(rows) == 16
        strict = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("count", None, alias="n")],
            having=lambda row: row["n"] >= 1000,
        )
        assert reference_aggregate(dist, strict) == []

    def test_no_having_keeps_everything(self, sum_query):
        dist = generate_uniform(500, 10, 2, seed=0)
        assert len(reference_aggregate(dist, sum_query)) == 10


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestHavingInAlgorithms:
    def test_matches_reference(self, algorithm, having_query):
        dist = generate_uniform(2000, 16, 4, seed=1)
        out = run_algorithm(algorithm, dist, having_query)
        assert_rows_close(
            out.rows, reference_aggregate(dist, having_query)
        )

    def test_having_with_tiny_memory(self, algorithm, having_query):
        from repro.core.runner import default_parameters

        dist = generate_uniform(2000, 300, 4, seed=2)
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("sum", "val", alias="total")],
            having=lambda row: row["total"] > 300.0,
        )
        params = default_parameters(dist, hash_table_entries=16)
        out = run_algorithm(algorithm, dist, query, params=params)
        assert_rows_close(out.rows, reference_aggregate(dist, query))


class TestHavingMultiprocessing:
    def test_mp_executor_applies_having(self, having_query):
        dist = generate_uniform(1000, 16, 2, seed=3)
        got = multiprocessing_aggregate(dist, having_query, processes=1)
        assert_rows_close(got, reference_aggregate(dist, having_query))
