"""Property-based round-trips for the columnar block and its dictionary.

The dictionary codec is length-exact, so unlike the NUL-padded
fixed-width codec its encodable string domain is *all* of ``str`` —
embedded NULs, trailing NULs, non-ASCII, astral plane.  The strategies
here generate exactly that hostile domain on purpose.  The fixed-width
codec's counterpart guarantee — trailing-NUL strings are *rejected* at
encode time instead of silently corrupted at decode time — is pinned in
``tests/test_rowblock.py``.

Also covers :class:`repro.storage.BucketMemo`: bounded memoization for
``bucket_of_block`` whose shedding is invisible to results but visible
to the governor account and metrics.
"""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.resources.governor import MemoryPolicy, NodeLedger
from repro.storage.columnblock import (
    ColumnBlock,
    StringDictionary,
    have_numpy,
)
from repro.storage.hashing import BucketMemo, bucket_of, bucket_of_block
from repro.storage.rowblock import RowBlock
from repro.storage.schema import Column, Schema

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="columnar blocks require numpy"
)

_INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_FLOAT64 = st.floats(allow_nan=False)
# The whole point: any string at all, including "\x00" runs and
# non-ASCII, is representable.
_ANY_STR = st.text(alphabet=st.characters(codec="utf-8"), max_size=12)


@st.composite
def _schema_and_rows(draw):
    num_cols = draw(st.integers(min_value=1, max_value=4))
    columns = []
    value_strategies = []
    for i in range(num_cols):
        kind = draw(st.sampled_from(["int", "float", "str"]))
        if kind == "str":
            columns.append(Column(f"c{i}", "str", 12))
            value_strategies.append(_ANY_STR)
        else:
            columns.append(Column(f"c{i}", kind))
            value_strategies.append(_INT64 if kind == "int" else _FLOAT64)
    rows = draw(st.lists(st.tuples(*value_strategies), max_size=30))
    return Schema(columns), rows


@given(_schema_and_rows())
def test_from_rows_to_rows_round_trip(case):
    schema, rows = case
    block = ColumnBlock.from_rows(schema, rows)
    assert len(block) == len(rows)
    assert block.to_rows() == rows


@given(_schema_and_rows())
def test_serialization_round_trip(case):
    schema, rows = case
    block = ColumnBlock.from_rows(schema, rows)
    back = ColumnBlock.from_bytes(schema, block.to_bytes())
    assert back.to_rows() == rows


@given(_schema_and_rows())
def test_column_extraction_matches_rows(case):
    schema, rows = case
    block = ColumnBlock.from_rows(schema, rows)
    for i in range(len(schema.columns)):
        assert block.column(i) == [row[i] for row in rows]


@given(st.lists(_ANY_STR))
def test_dictionary_codes_round_trip(values):
    dictionary = StringDictionary()
    codes = dictionary.encode_many(values)
    assert [dictionary.decode(c) for c in codes] == values
    # One code per distinct value, dealt in first-seen order.
    assert len(dictionary) == len(set(values))
    seen: dict[str, int] = {}
    for value, code in zip(values, codes):
        assert seen.setdefault(value, code) == code


def test_dictionary_merge_maps_codes():
    a = StringDictionary(["x", "y"])
    b = StringDictionary(["y", "z\x00"])
    mapping = b.merge(a)
    assert mapping == [b.code_of("x"), b.code_of("y")]
    assert b.values == ["y", "z\x00", "x"]


def test_dictionary_rejects_duplicates():
    with pytest.raises(ValueError):
        StringDictionary(["a", "a"])


def test_projection_during_extraction():
    schema = Schema([Column("k", "str", 8), Column("v", "int")])
    rows = [(1, "a\x00b", 7.5, 10), (2, "c", 8.5, 20)]
    block = ColumnBlock.from_rows(schema, rows, idx=[1, 3])
    assert block.to_rows() == [("a\x00b", 10), ("c", 20)]


class TestFromRowsErrors:
    def test_float_in_int_column_raises(self):
        schema = Schema([Column("n", "int")])
        with pytest.raises(ValueError):
            ColumnBlock.from_rows(schema, [(1,), (2.5,)])

    def test_out_of_range_int_raises(self):
        schema = Schema([Column("n", "int")])
        with pytest.raises(ValueError):
            ColumnBlock.from_rows(schema, [(2**63,)])


class TestFromBytesErrors:
    def _block_bytes(self):
        schema = Schema([Column("k", "str", 8), Column("n", "int")])
        return schema, ColumnBlock.from_rows(
            schema, [("a", 1), ("b\x00", 2)]
        ).to_bytes()

    def test_bad_magic(self):
        schema, data = self._block_bytes()
        with pytest.raises(ValueError, match="magic"):
            ColumnBlock.from_bytes(schema, b"XXXX" + data[4:])

    def test_column_count_mismatch(self):
        schema, data = self._block_bytes()
        narrower = Schema([Column("k", "str", 8)])
        with pytest.raises(ValueError, match="column count"):
            ColumnBlock.from_bytes(narrower, data)

    def test_code_out_of_dictionary_range(self):
        schema = Schema([Column("k", "str", 8)])
        block = ColumnBlock.from_rows(schema, [("a",), ("b",)])
        data = bytearray(block.to_bytes())
        # Corrupt a code past the dictionary: codes live right after the
        # 12-byte header + 4-byte column length prefix.
        struct.pack_into("<i", data, 16, 99)
        with pytest.raises(ValueError, match="dictionary range"):
            ColumnBlock.from_bytes(schema, bytes(data))


# -- BucketMemo ---------------------------------------------------------------


def _key_block(keys):
    schema = Schema([Column("k", "int"), Column("v", "int")])
    return RowBlock.from_rows(schema, [(k, k * 3) for k in keys])


class TestBucketMemo:
    def test_results_identical_to_unbounded(self):
        keys = [i % 37 for i in range(500)]
        block = _key_block(keys)
        memo = BucketMemo(max_entries=8)
        assert bucket_of_block(block, [0], 16, cache=memo) == [
            bucket_of((k,), 16) for k in keys
        ]
        assert memo.sheds > 0  # 37 distinct keys through an 8-entry memo

    def test_bound_is_enforced(self):
        memo = BucketMemo(max_entries=4)
        for k in range(100):
            memo[bytes([k])] = k % 7
        assert len(memo) <= 4
        assert memo.shed_entries > 0

    def test_account_charges_and_releases(self):
        ledger = NodeLedger(MemoryPolicy(node_budget_bytes=10_000), 0)
        account = ledger.open("partition")
        memo = BucketMemo(max_entries=4, entry_bytes=100, account=account)
        for k in range(3):
            memo[bytes([k])] = k
        assert account.used == 300
        memo[b"\x03"] = 3
        memo[b"\x04"] = 4  # hits the bound: shed releases the charge
        assert account.used == 100
        memo.close()
        assert account.used == 0

    def test_shed_metric_emitted(self):
        metrics = MetricsRegistry()
        memo = BucketMemo(max_entries=2, metrics=metrics)
        for k in range(5):
            memo[bytes([k])] = k
        assert metrics.counter("mem_bucket_memo_sheds").value >= 1
        assert metrics.counter("mem_bucket_memo_shed_entries").value >= 2

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            BucketMemo(max_entries=0)
