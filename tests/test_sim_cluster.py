"""Tests for cluster assembly and the run-result container."""

import pytest

from repro.costmodel.params import SystemParameters
from repro.sim.cluster import Cluster, RunResult
from repro.sim.events import TraceEvent


@pytest.fixture
def params():
    return SystemParameters.paper_default().with_(num_nodes=3)


def idle_program(value):
    def factory(ctx):
        def program(ctx=ctx):
            yield ctx.compute(0.001 * (ctx.node_id + 1))
            return value

        return program()

    return factory


class TestCluster:
    def test_runs_one_program_per_node(self, params):
        cluster = Cluster(params)
        result = cluster.run([idle_program(i) for i in range(3)])
        assert result.node_results == [0, 1, 2]

    def test_program_count_validated(self, params):
        cluster = Cluster(params)
        with pytest.raises(ValueError, match="programs"):
            cluster.run([idle_program(0)])

    def test_elapsed_is_makespan(self, params):
        cluster = Cluster(params)
        result = cluster.run([idle_program(i) for i in range(3)])
        assert result.elapsed_seconds == pytest.approx(0.003)

    def test_contexts_know_their_node(self, params):
        seen = []

        def factory_for(i):
            def factory(ctx):
                def program():
                    seen.append((ctx.node_id, ctx.num_nodes))
                    return None
                    yield  # pragma: no cover

                return program()

            return factory

        Cluster(params).run([factory_for(i) for i in range(3)])
        assert seen == [(0, 3), (1, 3), (2, 3)]

    def test_fresh_network_per_run(self, params):
        """Two runs must not share bus state."""
        cluster = Cluster(params)

        def chatty(ctx):
            def program():
                yield ctx.send(
                    (ctx.node_id + 1) % 3, "m", nbytes=params.block_bytes
                )
                yield ctx.recv()

            return program()

        first = cluster.run([chatty, chatty, chatty])
        second = cluster.run([chatty, chatty, chatty])
        assert first.elapsed_seconds == second.elapsed_seconds
        assert (
            first.metrics.network_blocks == second.metrics.network_blocks
        )


class TestRunResult:
    def test_events_filter(self):
        trace = [
            TraceEvent(0.0, 0, "a"),
            TraceEvent(1.0, 1, "b"),
            TraceEvent(2.0, 0, "a"),
        ]
        result = RunResult(2.0, [], None, trace)
        assert len(result.events("a")) == 2
        assert result.events("c") == []
