"""Round-trip tests for the CSV relation I/O."""

import pytest

from repro.storage.io import (
    load_distributed,
    load_relation,
    load_schema,
    save_distributed,
    save_relation,
    save_schema,
)
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_uniform


@pytest.fixture
def schema():
    return Schema(
        [
            Column("k", "int"),
            Column("v", "float"),
            Column("tag", "str", size_bytes=4),
        ]
    )


class TestSchemaRoundTrip:
    def test_roundtrip(self, schema, tmp_path):
        save_schema(schema, str(tmp_path))
        loaded = load_schema(str(tmp_path))
        assert loaded == schema

    def test_bad_header_rejected(self, tmp_path):
        (tmp_path / "schema.csv").write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="bad schema file"):
            load_schema(str(tmp_path))


class TestRelationRoundTrip:
    def test_roundtrip_preserves_types(self, schema, tmp_path):
        rel = Relation(schema, [(1, 2.5, "x"), (-3, 0.0, "y")])
        path = str(tmp_path / "rel.csv")
        save_relation(rel, path)
        loaded = load_relation(path, schema)
        assert loaded.rows == rel.rows
        assert isinstance(loaded.rows[0][0], int)
        assert isinstance(loaded.rows[0][1], float)

    def test_header_mismatch_rejected(self, schema, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("wrong,header,here\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_relation(str(path), schema)

    def test_arity_mismatch_rejected(self, schema, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("k,v,tag\n1,2\n")
        with pytest.raises(ValueError, match="arity"):
            load_relation(str(path), schema)


class TestDistributedRoundTrip:
    def test_roundtrip_preserves_placement(self, tmp_path):
        dist = generate_uniform(500, 20, 4, seed=3)
        save_distributed(dist, str(tmp_path / "data"))
        loaded = load_distributed(str(tmp_path / "data"))
        assert loaded.num_nodes == 4
        assert loaded.tuples_per_node() == dist.tuples_per_node()
        for a, b in zip(loaded.fragments, dist.fragments):
            assert a.relation.rows == b.relation.rows

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_distributed(str(tmp_path / "nope"))

    def test_empty_directory_rejected(self, tmp_path, schema):
        save_schema(schema, str(tmp_path))
        with pytest.raises(FileNotFoundError, match="fragments"):
            load_distributed(str(tmp_path))

    def test_loaded_relation_runs_queries(self, tmp_path, sum_query):
        from repro.core.runner import run_algorithm
        from repro.parallel import reference_aggregate
        from tests.conftest import assert_rows_close

        dist = generate_uniform(800, 10, 2, seed=4)
        save_distributed(dist, str(tmp_path / "d"))
        loaded = load_distributed(str(tmp_path / "d"))
        out = run_algorithm("two_phase", loaded, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))
