"""Property-based tests: merge must commute/associate with update.

These invariants are what make unsynchronized per-node adaptation correct:
whatever order nodes process tuples in, and however partials and raw
tuples interleave at the merge phase, the result must equal sequential
aggregation.
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.core.aggregates import (
    AvgState,
    CountDistinctState,
    CountState,
    MaxState,
    MinState,
    SumState,
)

STATE_TYPES = [
    CountState,
    SumState,
    MinState,
    MaxState,
    AvgState,
    CountDistinctState,
]

values = st.lists(
    st.one_of(
        st.integers(min_value=-10**6, max_value=10**6),
        st.none(),
    ),
    max_size=40,
)


def build(state_type, vals):
    state = state_type()
    for v in vals:
        state.update(v)
    return state


def results_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
    return a == b


@given(values, values)
def test_merge_equals_concatenation(left, right):
    """state(A) merged with state(B) == state(A + B) for every function."""
    for state_type in STATE_TYPES:
        merged = build(state_type, left)
        merged.merge(build(state_type, right))
        whole = build(state_type, left + right)
        assert results_equal(merged.result(), whole.result()), state_type


@given(values, values)
def test_merge_commutes(left, right):
    for state_type in STATE_TYPES:
        ab = build(state_type, left)
        ab.merge(build(state_type, right))
        ba = build(state_type, right)
        ba.merge(build(state_type, left))
        assert results_equal(ab.result(), ba.result()), state_type


@given(values, values, values)
def test_merge_associates(a, b, c):
    for state_type in STATE_TYPES:
        left = build(state_type, a)
        bc = build(state_type, b)
        bc.merge(build(state_type, c))
        left.merge(bc)

        right = build(state_type, a)
        right.merge(build(state_type, b))
        right.merge(build(state_type, c))
        assert results_equal(left.result(), right.result()), state_type


@given(values)
def test_copy_equals_original(vals):
    for state_type in STATE_TYPES:
        original = build(state_type, vals)
        assert results_equal(original.copy().result(), original.result())


@given(values)
def test_merge_with_empty_is_identity(vals):
    for state_type in STATE_TYPES:
        state = build(state_type, vals)
        before = state.copy().result()
        state.merge(state_type())
        assert results_equal(state.result(), before), state_type


@given(values)
def test_split_anywhere_matches_whole(vals):
    """Splitting the stream at every point gives the same answer."""
    for state_type in (SumState, AvgState, CountState):
        whole = build(state_type, vals).result()
        for cut in range(len(vals) + 1):
            merged = build(state_type, vals[:cut])
            merged.merge(build(state_type, vals[cut:]))
            assert results_equal(merged.result(), whole)
