"""Shared-memory hygiene and parity of the pooled executor.

Every pooled dispatch creates ``/dev/shm/repro_mp_*`` segments owned by
the parent; the contract is that *zero* survive any exit path — clean
runs, raising workers, hard worker deaths, wedged-worker timeouts, and
budgeted OOM-retry ladders.  The chaos matrix here drives each of those
paths with real processes and counts segments after every one.

The parity half pins that the pooled path (vectorized kernel, shm
blocks, columnwise encode) and its fallbacks (string keys, WHERE
clauses, multi-column keys, arbitrary-precision int sums) all produce
results identical to the spawn baseline and the in-process path.
"""

import functools
import glob
import os
import threading
import time

import pytest

from tests.conftest import assert_rows_close
from tests.test_mp_executor_faults import (
    _always_raise,
    _die_once_then_work,
    _wedge,
)

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import (
    FragmentFailedError,
    multiprocessing_aggregate,
    reference_aggregate,
)
from repro.parallel import mp_executor
from repro.storage.schema import Column, Schema
from repro.storage.relation import DistributedRelation
from repro.workloads.generator import generate_uniform

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not mounted"
)


def _segments():
    return glob.glob("/dev/shm/" + mp_executor.SHM_PREFIX + "*")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module starts and must end segment-clean."""
    assert _segments() == []
    yield
    assert _segments() == [], "executor leaked shared-memory segments"


@pytest.fixture
def dist():
    return generate_uniform(num_tuples=2400, num_groups=60, num_nodes=4, seed=21)


@pytest.fixture
def query():
    return AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )


def _gkey_at_least_ten(row):
    # WHERE predicates cross the process boundary, so module-level.
    return row["gkey"] >= 10


def _sleep_then_work(job):
    # Long enough for the test to kill an idle worker mid-run.
    time.sleep(0.6)
    return mp_executor._local_phase(job)


def _str_keyed_dist():
    schema = Schema(
        [Column("dept", "str", 8), Column("n", "int"), Column("val", "float")]
    )
    rows = [(f"dept-{i % 7}", i, float(i) / 3.0) for i in range(900)]
    return DistributedRelation(schema, [rows[i::3] for i in range(3)])


class TestChaosMatrixLeavesNoSegments:
    """Each executor exit path, checked for segment hygiene by the
    autouse fixture; assertions inside pin the path actually taken."""

    def test_clean_run(self, dist, query):
        got = multiprocessing_aggregate(dist, query, processes=2)
        assert_rows_close(got, reference_aggregate(dist, query))

    def test_raising_worker_exhausts_retries(self, dist, query):
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, query, processes=2, max_retries=1,
                phase_fn=_always_raise,
            )
        assert "injected failure" in info.value.cause

    def test_worker_death_then_recovery(self, dist, query, tmp_path):
        phase = functools.partial(
            _die_once_then_work, str(tmp_path / "died_once")
        )
        got = multiprocessing_aggregate(
            dist, query, processes=2, phase_fn=phase
        )
        assert_rows_close(got, reference_aggregate(dist, query))

    def test_wedged_worker_times_out(self, dist, query):
        with pytest.raises(FragmentFailedError):
            multiprocessing_aggregate(
                dist, query, processes=2, max_retries=0,
                timeout=0.5, phase_fn=_wedge,
            )

    def test_oom_retry_ladder(self, dist, query):
        got = multiprocessing_aggregate(
            dist, query, processes=2, memory_budget_bytes=1500
        )
        assert_rows_close(got, reference_aggregate(dist, query))

    def test_shutdown_after_runs(self, dist, query):
        multiprocessing_aggregate(dist, query, processes=2)
        mp_executor.shutdown_worker_pool()
        # Idempotent, and a later run transparently respawns workers.
        mp_executor.shutdown_worker_pool()
        got = multiprocessing_aggregate(dist, query, processes=2)
        assert_rows_close(got, reference_aggregate(dist, query))


class TestPoolBehaviour:
    def test_workers_are_reused_across_runs(self, dist, query):
        multiprocessing_aggregate(dist, query, processes=2)
        pool = mp_executor._get_shared_pool()
        spawned_after_first = pool.spawned
        assert spawned_after_first >= 1
        for _ in range(3):
            multiprocessing_aggregate(dist, query, processes=2)
        assert pool.spawned == spawned_after_first

    def test_strategy_is_validated(self, dist, query):
        with pytest.raises(ValueError, match="strategy"):
            multiprocessing_aggregate(
                dist, query, processes=2, strategy="threads"
            )

    def test_strategies_agree_exactly(self, dist, query):
        pool = multiprocessing_aggregate(
            dist, query, processes=2, strategy="pool"
        )
        spawn = multiprocessing_aggregate(
            dist, query, processes=2, strategy="spawn"
        )
        inproc = multiprocessing_aggregate(dist, query, processes=1)
        # Bit-identical, not merely close: the vectorized kernel must
        # accumulate in the same order as the per-row loop.
        assert pool == spawn == inproc


class TestPoolHealth:
    """Idle-death handling and shutdown/respawn lifecycle."""

    def test_acquire_discards_worker_that_died_while_idle(self, dist, query):
        multiprocessing_aggregate(dist, query, processes=2)
        pool = mp_executor._get_shared_pool()
        idle = pool.idle_workers()
        assert len(idle) >= 2
        # acquire pops from the end, so the last idle worker is the one
        # it inspects first: kill it and make acquire skip the corpse.
        victim = idle[-1]
        victim.proc.kill()
        victim.proc.join()
        worker = pool.acquire()
        assert worker is not victim
        assert worker.proc.is_alive()
        assert victim not in pool.idle_workers()
        pool.release(worker)

    def test_idle_death_detected_eagerly_during_run(self, query):
        from repro.obs.metrics import MetricsRegistry

        # Warm the pool to three workers, so a two-process run leaves
        # one idle for the dispatcher to watch.
        warm = generate_uniform(num_tuples=900, num_groups=12, num_nodes=3,
                                seed=7)
        multiprocessing_aggregate(warm, query, processes=3)
        pool = mp_executor._get_shared_pool()
        assert len(pool.idle_workers()) >= 3

        dist = generate_uniform(num_tuples=800, num_groups=12, num_nodes=2,
                                seed=8)
        # acquire pops from the end, so index 0 stays idle.
        bystander = pool.idle_workers()[0]
        killer = threading.Timer(0.15, bystander.proc.kill)
        metrics = MetricsRegistry()
        killer.start()
        try:
            got = multiprocessing_aggregate(
                dist, query, processes=2, phase_fn=_sleep_then_work,
                metrics=metrics,
            )
        finally:
            killer.cancel()
        assert_rows_close(got, reference_aggregate(dist, query))
        # The dispatcher noticed the idle corpse *during* the run — no
        # waiting for the next acquire to trip over it.
        assert metrics.value("mp.pool.idle_deaths") == 1
        assert bystander not in pool.idle_workers()

    def test_explicit_shutdown_forks_fresh_pool(self, dist, query):
        multiprocessing_aggregate(dist, query, processes=2)
        old_pool = mp_executor._get_shared_pool()
        mp_executor.shutdown_worker_pool()
        got = multiprocessing_aggregate(dist, query, processes=2)
        assert_rows_close(got, reference_aggregate(dist, query))
        new_pool = mp_executor._get_shared_pool()
        assert new_pool is not old_pool
        assert new_pool.spawned >= 1
        # A stale handle's shutdown is harmless to the fresh pool.
        old_pool.shutdown()
        assert len(new_pool.idle_workers()) >= 1


class TestPoolLifecycleUnderReuse:
    """N sequential + M concurrent runs must leak nothing: zero shm
    segments (autouse fixture), zero leaked parent-side threads
    (heartbeat senders live in the workers; the parent must return to
    its baseline thread count), zero child processes once the pool is
    shut down."""

    def _leak_counts(self, baseline_threads):
        import multiprocessing as mp

        return (
            len(_segments()),
            max(0, threading.active_count() - baseline_threads),
            len(mp.active_children()),
        )

    def test_sequential_runs_leak_nothing(self, dist, query):
        mp_executor.shutdown_worker_pool()
        baseline_threads = threading.active_count()
        expected = reference_aggregate(dist, query)
        for _ in range(5):
            got = multiprocessing_aggregate(dist, query, processes=2)
            assert_rows_close(got, expected)
            # Dispatch helpers are per-run: none may outlive a run.
            assert threading.active_count() <= baseline_threads
        mp_executor.shutdown_worker_pool()
        assert self._leak_counts(baseline_threads) == (0, 0, 0)

    def test_concurrent_runs_leak_nothing(self, query):
        mp_executor.shutdown_worker_pool()
        baseline_threads = threading.active_count()
        dists = [
            generate_uniform(num_tuples=1200, num_groups=30,
                             num_nodes=3, seed=100 + i)
            for i in range(4)
        ]
        expected = [reference_aggregate(d, query) for d in dists]
        results: list = [None] * len(dists)
        errors: list = []

        def run(i: int) -> None:
            try:
                results[i] = multiprocessing_aggregate(
                    dists[i], query, processes=2
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,))
            for i in range(len(dists))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        for got, want in zip(results, expected):
            assert_rows_close(got, want)
        mp_executor.shutdown_worker_pool()
        assert self._leak_counts(baseline_threads) == (0, 0, 0)

    def test_concurrent_callers_share_one_pool(self, query):
        """Concurrent dispatchers must reuse workers, not fork per
        caller — the thread-safety fix the service depends on."""
        mp_executor.shutdown_worker_pool()
        dist = generate_uniform(num_tuples=1200, num_groups=30,
                                num_nodes=3, seed=11)
        multiprocessing_aggregate(dist, query, processes=2)  # warm
        pool = mp_executor._get_shared_pool()
        barrier = threading.Barrier(3)
        errors: list = []

        def run() -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(2):
                    multiprocessing_aggregate(dist, query, processes=2)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert mp_executor._get_shared_pool() is pool
        # Every fork is serialized under the pool lock and every worker
        # is either reacquired or parked idle — never orphaned.
        assert pool.spawned <= 6  # 3 callers x 2 workers worst case
        assert len(pool.idle_workers()) == pool.spawned
        mp_executor.shutdown_worker_pool()

    def test_release_into_closed_pool_discards(self, dist, query):
        """A dispatcher finishing after shutdown must not resurrect
        workers into the dead pool (the atexit/shutdown interplay)."""
        import multiprocessing as mp

        multiprocessing_aggregate(dist, query, processes=2)
        pool = mp_executor._get_shared_pool()
        worker = pool.acquire()
        mp_executor.shutdown_worker_pool()
        assert pool.closed
        pool.release(worker)
        assert not worker.proc.is_alive()
        assert pool.idle_workers() == []
        assert mp.active_children() == []


class TestVectorizedFallbackParity:
    """Shapes the vectorized kernel refuses must take the decode
    fallback and still match the other dispatch paths exactly."""

    @staticmethod
    def _agree(dist, query):
        pool = multiprocessing_aggregate(
            dist, query, processes=2, strategy="pool"
        )
        inproc = multiprocessing_aggregate(dist, query, processes=1)
        assert pool == inproc
        assert_rows_close(pool, reference_aggregate(dist, query))

    def test_string_group_key(self):
        query = AggregateQuery(
            group_by=["dept"],
            aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
        )
        self._agree(_str_keyed_dist(), query)

    def test_multi_column_key(self):
        query = AggregateQuery(
            group_by=["dept", "n"],
            aggregates=[AggregateSpec("count")],
        )
        self._agree(_str_keyed_dist(), query)

    def test_where_clause(self, dist):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("sum", "val")],
            where=_gkey_at_least_ten,
        )
        self._agree(dist, query)

    def test_int_sum_stays_arbitrary_precision(self):
        query = AggregateQuery(
            group_by=["dept"], aggregates=[AggregateSpec("sum", "n")]
        )
        self._agree(_str_keyed_dist(), query)

    def test_rich_aggregate_mix(self, dist):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[
                AggregateSpec("sum", "val"),
                AggregateSpec("count"),
                AggregateSpec("min", "val"),
                AggregateSpec("max", "val"),
                AggregateSpec("avg", "val"),
                AggregateSpec("var", "val"),
                AggregateSpec("stddev", "val"),
            ],
        )
        self._agree(dist, query)

    def test_count_distinct_falls_back(self, dist):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("count_distinct", "val")],
        )
        self._agree(dist, query)
