"""Unit tests for the sampling substrate (Section 3.1)."""

import numpy as np
import pytest

from repro.sampling.decision import (
    REPARTITIONING,
    TWO_PHASE,
    choose_algorithm,
    crossover_threshold,
)
from repro.sampling.estimator import (
    distinct_lower_bound,
    erdos_renyi_sample_size,
    paper_sample_size,
)
from repro.sampling.page_sampler import sample_fragment_pages, sample_rows
from repro.storage.relation import Relation
from repro.storage.schema import default_schema


@pytest.fixture
def relation():
    schema = default_schema()
    rows = [(i % 50, float(i), "") for i in range(2000)]
    return Relation(schema, rows)


class TestPageSampler:
    def test_samples_whole_pages(self, relation):
        rng = np.random.default_rng(0)
        rows, pages = sample_fragment_pages(relation, 3, 4096, rng)
        per_page = 4096 // 100
        assert pages == 3
        assert len(rows) == 3 * per_page

    def test_oversample_returns_everything(self, relation):
        rng = np.random.default_rng(0)
        rows, pages = sample_fragment_pages(relation, 10_000, 4096, rng)
        assert len(rows) == 2000
        assert pages == relation.num_pages(4096)

    def test_pages_are_distinct(self, relation):
        rng = np.random.default_rng(0)
        rows, _pages = sample_fragment_pages(relation, 20, 4096, rng)
        assert len(rows) == len(set(r[1] for r in rows))  # vals unique

    def test_sample_rows_rounds_to_pages(self, relation):
        rng = np.random.default_rng(0)
        rows, pages = sample_rows(relation, 50, 4096, rng)
        assert pages == 2  # 40 tuples/page
        assert len(rows) == 80

    def test_sample_rows_zero(self, relation):
        rng = np.random.default_rng(0)
        assert sample_rows(relation, 0, 4096, rng) == ([], 0)

    def test_negative_rejected(self, relation):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_fragment_pages(relation, -1, 4096, rng)

    def test_deterministic_by_rng(self, relation):
        a, _ = sample_fragment_pages(
            relation, 5, 4096, np.random.default_rng(3)
        )
        b, _ = sample_fragment_pages(
            relation, 5, 4096, np.random.default_rng(3)
        )
        assert a == b


class TestEstimator:
    def test_distinct_lower_bound(self):
        assert distinct_lower_bound([1, 1, 2, 3, 3]) == 3

    def test_lower_bound_never_exceeds_truth(self):
        rng = np.random.default_rng(0)
        population = rng.integers(0, 100, 10_000)
        sample = rng.choice(population, 500)
        assert distinct_lower_bound(sample) <= 100

    def test_erdos_renyi_grows_superlinearly(self):
        assert erdos_renyi_sample_size(1000) > 2 * erdos_renyi_sample_size(
            400
        )

    def test_erdos_renyi_threshold_one(self):
        assert erdos_renyi_sample_size(1) == 1

    def test_erdos_renyi_suffices_in_practice(self):
        """Drawing that many samples really does reveal ~all k groups."""
        k = 64
        n = erdos_renyi_sample_size(k, safety=2.0)
        rng = np.random.default_rng(1)
        seen = len(set(rng.integers(0, k, n)))
        assert seen == k

    def test_paper_sample_size_example(self):
        """The paper: threshold 320 needs ≈ 2563 ≈ 10× samples."""
        assert paper_sample_size(320) == 3200
        assert paper_sample_size(320, 8.01) == pytest.approx(2564, abs=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_sample_size(0)
        with pytest.raises(ValueError):
            paper_sample_size(0)


class TestDecision:
    def test_crossover_default(self):
        assert crossover_threshold(32) == 320

    def test_crossover_custom(self):
        assert crossover_threshold(8, groups_per_node=100) == 800

    def test_choose_two_phase_below(self):
        assert choose_algorithm(10, 320) == TWO_PHASE

    def test_choose_repartitioning_at_threshold(self):
        assert choose_algorithm(320, 320) == REPARTITIONING

    def test_validation(self):
        with pytest.raises(ValueError):
            crossover_threshold(0)
        with pytest.raises(ValueError):
            choose_algorithm(-1, 10)
