"""Property tests on the storage layer: partitioners, pages, CSV I/O."""

from __future__ import annotations

import tempfile

from hypothesis import given, settings, strategies as st

from repro.storage.hashing import stable_hash
from repro.storage.io import load_distributed, save_distributed
from repro.storage.partition import (
    hash_partition,
    round_robin_partition,
)
from repro.storage.relation import (
    DistributedRelation,
    Relation,
    pages_for,
    tuples_per_page,
)
from repro.storage.schema import Column, Schema

rows = st.lists(
    st.tuples(
        st.integers(min_value=-10**9, max_value=10**9),
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False,
            allow_infinity=False,
        ),
        st.text(
            alphabet=st.characters(
                codec="ascii", exclude_characters='",\r\n'
            ),
            max_size=8,
        ),
    ),
    max_size=60,
)

SCHEMA = Schema(
    [Column("k", "int"), Column("v", "float"), Column("t", "str")]
)


@given(rows, st.integers(min_value=1, max_value=9))
@settings(max_examples=60)
def test_partitioners_conserve_rows(data, parts):
    for partitioner in (
        lambda: round_robin_partition(data, parts),
        lambda: hash_partition(data, parts, key_func=lambda r: r[0]),
    ):
        out = partitioner()
        assert len(out) == parts
        assert sorted(r for p in out for r in p) == sorted(data)


@given(rows, st.integers(min_value=2, max_value=9))
@settings(max_examples=60)
def test_hash_partition_key_locality(data, parts):
    out = hash_partition(data, parts, key_func=lambda r: r[0])
    for key in {r[0] for r in data}:
        homes = [
            i for i, p in enumerate(out) if any(r[0] == key for r in p)
        ]
        assert len(homes) == 1
        assert homes[0] == stable_hash(key) % parts


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=65536),
)
@settings(max_examples=100)
def test_page_arithmetic_consistent(n, tuple_bytes, page_size):
    pages = pages_for(n, tuple_bytes, page_size)
    per_page = tuples_per_page(tuple_bytes, page_size)
    assert pages * per_page >= n
    if pages > 0:
        assert (pages - 1) * per_page < n


@given(rows, st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_distributed_csv_roundtrip(data, nodes):
    dist = DistributedRelation(
        SCHEMA, round_robin_partition(data, nodes)
    )
    with tempfile.TemporaryDirectory() as directory:
        save_distributed(dist, directory)
        loaded = load_distributed(directory)
    assert loaded.num_nodes == nodes
    for original, restored in zip(dist.fragments, loaded.fragments):
        assert restored.relation.rows == original.relation.rows


@given(rows)
@settings(max_examples=50)
def test_relation_pages_partition_rows(data):
    relation = Relation(SCHEMA, data)
    pages = list(relation.pages(page_size=128))
    assert [r for page in pages for r in page] == data
    if pages:
        per_page = tuples_per_page(SCHEMA.tuple_bytes, 128)
        assert all(len(p) == per_page for p in pages[:-1])
        assert 1 <= len(pages[-1]) <= per_page
