"""Regenerate the block-path parity golden vectors.

Run from the repo root at a known-good revision::

    PYTHONPATH=src python tests/golden/make_block_parity.py

The generated ``block_parity.json`` pins, for every algorithm, the exact
result rows and simulated elapsed seconds of three Fig-2 / Table-1 style
workloads — plain, fault-injected, and fully instrumented (memory
governor + tracer + decision ledger).  ``tests/test_block_parity.py``
asserts every later revision reproduces these bit-for-bit, so hot-path
rewrites (batched row blocks, memoized partitioning, chunked hashing)
cannot silently change an answer or a simulated timing.
"""

from __future__ import annotations

import json
import os

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, run_algorithm
from repro.obs.decisions import DecisionLedger
from repro.obs.tracer import Tracer
from repro.resources.governor import MemoryPolicy
from repro.sim.faults import CrashFault, FaultPlan, Straggler
from repro.storage.hashing import stable_hash
from repro.workloads.generator import generate_uniform, generate_zipf

OUT = os.path.join(os.path.dirname(__file__), "block_parity.json")


def fig2_workload():
    """A scaled-down Figure 2 shape: uniform groups, 4 nodes."""
    dist = generate_uniform(8000, 400, 4, seed=11)
    query = AggregateQuery(("gkey",), (AggregateSpec("sum", "val"),))
    return dist, query, {"pipeline": True}


def table1_workload():
    """A scaled-down Table 1 shape: skewed groups, richer aggregates."""
    dist = generate_zipf(6000, 300, 4, alpha=1.1, seed=7)
    query = AggregateQuery(
        ("gkey",),
        (
            AggregateSpec("sum", "val"),
            AggregateSpec("count", None),
            AggregateSpec("min", "val"),
        ),
    )
    return dist, query, {}


def rows_digest(rows) -> str:
    """A canonical sha256 over result rows, floats via exact hex."""
    import hashlib

    canon = []
    for row in rows:
        enc = []
        for value in row:
            if isinstance(value, float):
                enc.append(["f", value.hex()])
            else:
                enc.append(value)
        canon.append(enc)
    payload = json.dumps(canon, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def run_case(algorithm, dist, query, overrides, variant):
    kwargs = dict(overrides)
    tracer = ledger = None
    if variant == "faults":
        kwargs["faults"] = FaultPlan(
            seed=5,
            crashes=(CrashFault(1, after_tuples=400),),
            stragglers=(Straggler(2, 2.5),),
            message_loss=0.05,
            read_error_rate=0.02,
        )
    elif variant == "instrumented":
        kwargs["memory"] = MemoryPolicy(node_budget_bytes=200_000)
        tracer = Tracer()
        ledger = DecisionLedger()
    outcome = run_algorithm(
        algorithm, dist, query, tracer=tracer, ledger=ledger, **kwargs
    )
    return {
        "num_rows": len(outcome.rows),
        "rows_sha256": rows_digest(outcome.rows),
        "elapsed_seconds": float(outcome.elapsed_seconds).hex(),
    }


def main() -> None:
    doc = {"hash_golden": {}, "algorithms": {}}
    for key, value in [
        ("int_0", 0),
        ("int_1", 1),
        ("int_neg", -12345),
        ("int_big", 2**77 + 3),
        ("str", "group-17"),
        ("tuple_int", (42,)),
        ("tuple_mixed", ("g", 7, 2.5)),
        ("nested", ((1, 2), "x")),
        ("none", None),
        ("bool", True),
        ("float", 3.141592653589793),
        ("bytes", b"\x00\xffpad"),
        ("empty_str", ""),
        ("long_str", "k" * 100),
    ]:
        doc["hash_golden"][key] = stable_hash(value)
    for algorithm in ALGORITHMS:
        per_alg = {}
        for wname, builder in [("fig2", fig2_workload), ("table1", table1_workload)]:
            dist, query, overrides = builder()
            for variant in ("plain", "faults", "instrumented"):
                per_alg[f"{wname}/{variant}"] = run_case(
                    algorithm, dist, query, overrides, variant
                )
        doc["algorithms"][algorithm] = per_alg
    with open(OUT, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
