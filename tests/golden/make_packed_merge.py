"""Add (never regenerate) the packed-merge section of the goldens.

Run from the repo root at a known-good revision::

    PYTHONPATH=src python tests/golden/make_packed_merge.py

Loads ``block_parity.json``, leaves every existing section byte-for-byte
untouched, and adds/refreshes only the ``packed_merge`` section: exact
result-row digests for workloads that exercise the PR-10 packed wire
formats — string MIN/MAX as winner dictionary codes merged through a
union-dictionary LUT, and COUNT(DISTINCT) as sorted-unique
``(group, value)`` pair arrays.  Fragments are block-born, so the
in-process global path packs too.  ``tests/test_mp_packed.py`` asserts
every strategy reproduces these digests bit for bit.
"""

from __future__ import annotations

import importlib.util
import json
import os
import random

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.storage.columnblock import ColumnBlock
from repro.storage.relation import BlockRelation, DistributedRelation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_zipf

OUT = os.path.join(os.path.dirname(__file__), "block_parity.json")


def _load_block_parity_module():
    spec = importlib.util.spec_from_file_location(
        "make_block_parity",
        os.path.join(os.path.dirname(__file__), "make_block_parity.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_BP = _load_block_parity_module()
rows_digest = _BP.rows_digest


def _block_dist(schema, parts):
    return DistributedRelation(
        schema,
        [
            BlockRelation(schema, ColumnBlock.from_rows(schema, part))
            for part in parts
        ],
    )


def packed_extremes_workload():
    """Str MIN/MAX + distinct over adversarial dictionary contents.

    Values include embedded and trailing NULs, non-ASCII (latin,
    astral), the empty string, and prefixes of each other — shapes
    where a rank fold over a mis-ordered union dictionary would drift.
    Fragment dictionaries are disjoint-ish (per-fragment value pools),
    so the union LUT remap is always exercised.
    """
    rng = random.Random(4151)
    schema = Schema(
        [
            Column("k", "str", 12),
            Column("s", "str", 12),
            Column("n", "int"),
            Column("x", "float"),
        ]
    )
    keys = ["", "kö", "k\x00", "😀", "aaa", "aab", "z"]
    pools = [
        ["", "b", "b\x00", "ba"],
        ["\x00", "ß", "ss", "s\x00s"],
        ["😀", "😀x", "zz", "z\x00"],
        ["aa", "ab", "a\x00b", "é"],
    ]
    parts = []
    for pool in pools:
        parts.append(
            [
                (
                    rng.choice(keys),
                    rng.choice(pool),
                    rng.randrange(-9, 9),
                    rng.uniform(-10.0, 10.0),
                )
                for _ in range(700)
            ]
        )
    query = AggregateQuery(
        ("k",),
        (
            AggregateSpec("min", "s"),
            AggregateSpec("max", "s"),
            AggregateSpec("count_distinct", "s"),
            AggregateSpec("count_distinct", "n"),
            AggregateSpec("sum", "x"),
            AggregateSpec("count", None),
        ),
    )
    return _block_dist(schema, parts), query


def packed_zipf_strkey_workload():
    """The generator's own block-born str-key Zipf shape, full menu."""
    dist = generate_zipf(
        6000, 120, 4, alpha=1.1, seed=77, placement="hash",
        key_format="g{:06d}",
    )
    query = AggregateQuery(
        ("gkey",),
        (
            AggregateSpec("sum", "val"),
            AggregateSpec("min", "gkey"),
            AggregateSpec("max", "gkey"),
            AggregateSpec("count_distinct", "val"),
            AggregateSpec("avg", "val"),
        ),
    )
    return dist, query


WORKLOADS = {
    "packed_extremes": packed_extremes_workload,
    "packed_zipf_strkey": packed_zipf_strkey_workload,
}

STRATEGIES = ("pool", "spawn", "global", "rep", "auto")


def run_case(builder):
    from repro.parallel.mp_executor import (
        multiprocessing_aggregate,
        set_columnar_shipping,
        shutdown_worker_pool,
    )

    dist, query = builder()
    digests = set()
    reference = None
    try:
        for columnar in (True, False):
            set_columnar_shipping(columnar)
            for strategy in STRATEGIES:
                for processes in (1, 4):
                    rows = multiprocessing_aggregate(
                        dist, query, processes, strategy=strategy
                    )
                    reference = rows
                    digests.add(rows_digest(rows))
    finally:
        set_columnar_shipping(True)
        shutdown_worker_pool()
    if len(digests) != 1:
        raise AssertionError(
            f"strategies disagree before pinning: {sorted(digests)}"
        )
    return {
        "num_rows": len(reference),
        "rows_sha256": digests.pop(),
    }


def main() -> None:
    with open(OUT) as handle:
        doc = json.load(handle)
    doc["packed_merge"] = {
        name: run_case(builder) for name, builder in WORKLOADS.items()
    }
    with open(OUT, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote packed_merge section of {OUT}")


if __name__ == "__main__":
    main()
