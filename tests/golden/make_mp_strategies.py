"""Add (never regenerate) the mp-strategy parity section of the goldens.

Run from the repo root at a known-good revision::

    PYTHONPATH=src python tests/golden/make_mp_strategies.py

Loads ``block_parity.json``, leaves every existing vector byte-for-byte
untouched, and adds/refreshes only the ``mp_strategies`` section: for
each workload shape, the exact result rows (sha256 over the same
canonical encoding the simulator goldens use, floats as hex) of
``multiprocessing_aggregate``.  One digest per workload — the whole
point is that every strategy (pool / spawn / global / rep), with
columnar shipping on or off, must reproduce it bit for bit.
``tests/test_mp_columnar.py`` asserts exactly that.

The workloads deliberately cover what the columnar kernel added: string
group keys (dictionary codes), multi-column keys, and AVG/VAR/STDDEV
whose merge discipline is pinned by digest, not tolerance.
"""

from __future__ import annotations

import importlib.util
import json
import os
import random

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.storage.relation import DistributedRelation
from repro.storage.schema import Column, Schema

OUT = os.path.join(os.path.dirname(__file__), "block_parity.json")


def _load_block_parity_module():
    spec = importlib.util.spec_from_file_location(
        "make_block_parity",
        os.path.join(os.path.dirname(__file__), "make_block_parity.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_BP = _load_block_parity_module()
rows_digest = _BP.rows_digest


def fig2_mp_workload():
    """The simulator goldens' Fig-2 shape, on the real executor."""
    dist = _BP.fig2_workload()[0]
    query = AggregateQuery(("gkey",), (AggregateSpec("sum", "val"),))
    return dist, query


def strkey_workload():
    """String keys + the full aggregate menu, incl. AVG/VAR/STDDEV.

    Strings include non-ASCII and embedded NULs — representable only by
    the dictionary codec — so this digest pins the columnar string path
    and the moment-merge discipline at once.
    """
    rng = random.Random(1347)
    schema = Schema(
        [
            Column("city", "str", 16),
            Column("tier", "int"),
            Column("sales", "float"),
            Column("units", "int"),
        ]
    )
    cities = ["münchen", "oslo", "lyon", "quito", "ab\x00ba", "kyiv"]
    rows = [
        (
            rng.choice(cities),
            rng.randrange(3),
            rng.uniform(-500.0, 500.0),
            rng.randrange(-40, 160),
        )
        for _ in range(6000)
    ]
    parts = [rows[i::4] for i in range(4)]
    dist = DistributedRelation(schema, parts)
    query = AggregateQuery(
        ("city", "tier"),
        (
            AggregateSpec("count", None),
            AggregateSpec("sum", "sales"),
            AggregateSpec("sum", "units"),
            AggregateSpec("avg", "sales"),
            AggregateSpec("avg", "units"),
            AggregateSpec("min", "city"),
            AggregateSpec("max", "sales"),
            AggregateSpec("var", "sales"),
            AggregateSpec("stddev", "units"),
            AggregateSpec("count_distinct", "tier"),
        ),
    )
    return dist, query


WORKLOADS = {
    "fig2_mp": fig2_mp_workload,
    "strkey_mp": strkey_workload,
}

STRATEGIES = ("pool", "spawn", "global", "rep")


def run_case(builder):
    from repro.parallel.mp_executor import (
        multiprocessing_aggregate,
        set_columnar_shipping,
        shutdown_worker_pool,
    )

    dist, query = builder()
    digests = set()
    reference = None
    try:
        for columnar in (True, False):
            set_columnar_shipping(columnar)
            for strategy in STRATEGIES:
                rows = multiprocessing_aggregate(
                    dist, query, 4, strategy=strategy
                )
                reference = rows
                digests.add(rows_digest(rows))
    finally:
        set_columnar_shipping(True)
        shutdown_worker_pool()
    if len(digests) != 1:
        raise AssertionError(
            f"strategies disagree before pinning: {sorted(digests)}"
        )
    return {
        "num_rows": len(reference),
        "rows_sha256": digests.pop(),
    }


def main() -> None:
    with open(OUT) as handle:
        doc = json.load(handle)
    doc["mp_strategies"] = {
        name: run_case(builder) for name, builder in WORKLOADS.items()
    }
    with open(OUT, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote mp_strategies section of {OUT}")


if __name__ == "__main__":
    main()
