"""Behavioral tests for streaming pre-aggregation (the modern extension)."""

import pytest

from repro.core.aggregates import AggregateSpec, make_state_factory
from repro.core.algorithms.streaming_pre_aggregation import (
    LruAggregationTable,
)
from repro.core.runner import default_parameters, run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform, generate_zipf

from tests.conftest import assert_rows_close

SPECS = [AggregateSpec("sum", "v"), AggregateSpec("count", None)]


def make_table(max_entries):
    return LruAggregationTable(max_entries, make_state_factory(SPECS))


class TestLruTable:
    def test_no_eviction_below_capacity(self):
        t = make_table(4)
        for i in range(4):
            assert t.add_values(i, (1.0, 1)) is None
        assert t.evictions == 0

    def test_evicts_least_recently_used(self):
        t = make_table(2)
        t.add_values("a", (1.0, 1))
        t.add_values("b", (1.0, 1))
        t.add_values("a", (1.0, 1))  # refresh a
        evicted = t.add_values("c", (1.0, 1))
        assert evicted[0] == "b"

    def test_evicted_state_carries_partial(self):
        t = make_table(1)
        t.add_values("a", (2.0, 1))
        t.add_values("a", (3.0, 1))
        evicted = t.add_values("b", (1.0, 1))
        assert evicted[0] == "a"
        assert evicted[1].results() == (5.0, 2)

    def test_hit_counting(self):
        t = make_table(2)
        t.add_values("a", (1.0, 1))
        t.add_values("a", (1.0, 1))
        t.add_values("a", (1.0, 1))
        assert t.hits == 2

    def test_drain(self):
        t = make_table(3)
        t.add_values("a", (1.0, 1))
        t.add_values("b", (1.0, 1))
        items = t.drain()
        assert sorted(k for k, _ in items) == ["a", "b"]
        assert len(t) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_table(0)


class TestStreamingAlgorithm:
    def test_no_evictions_when_memory_suffices(self, sum_query):
        dist = generate_uniform(4000, 16, 4, seed=0)
        params = default_parameters(dist, hash_table_entries=100)
        out = run_algorithm(
            "streaming_pre_aggregation", dist, sum_query, params=params
        )
        assert not out.events_named("evictions")

    def test_evictions_logged_under_pressure(self, sum_query):
        dist = generate_uniform(4000, 800, 4, seed=1)
        params = default_parameters(dist, hash_table_entries=50)
        out = run_algorithm(
            "streaming_pre_aggregation", dist, sum_query, params=params
        )
        events = out.events_named("evictions")
        assert len(events) == 4  # every node under pressure

    def test_correct_under_heavy_eviction(self, sum_query):
        dist = generate_uniform(4000, 1500, 4, seed=2)
        params = default_parameters(dist, hash_table_entries=8)
        out = run_algorithm(
            "streaming_pre_aggregation", dist, sum_query, params=params
        )
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_memory_never_exceeds_allocation(self, sum_query):
        dist = generate_uniform(4000, 1500, 4, seed=3)
        m = 32
        params = default_parameters(dist, hash_table_entries=m)
        out = run_algorithm(
            "streaming_pre_aggregation", dist, sum_query, params=params
        )
        local_peaks = [n.peak_table_entries for n in out.metrics.nodes]
        # The merge phase may hold more (its own allocation); local
        # recording happens before drain, so peaks reflect the LRU cap.
        assert all(p <= max(m, 1500 // 4 * 2) for p in local_peaks)

    def test_zipf_hot_groups_absorb_locally(self, sum_query):
        """The modern engine's advantage: on Zipf data the hit rate
        stays high even when distinct >> M, so far fewer partials cross
        the network than tuples entered."""
        dist = generate_zipf(16_000, 4000, 4, alpha=1.4, seed=4)
        params = default_parameters(dist, hash_table_entries=64)
        out = run_algorithm(
            "streaming_pre_aggregation", dist, sum_query, params=params
        )
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))
        events = out.events_named("evictions")
        total_hits = sum(e.detail["hits"] for e in events)
        # A meaningful fraction of tuples collapsed into resident groups.
        assert total_hits > 0.3 * len(dist)

    def test_beats_a2p_on_zipf_network_bytes(self, sum_query):
        """vs A-2P: after A-2P switches it forwards every remaining tuple
        raw; eviction keeps absorbing the heavy hitters."""
        dist = generate_zipf(16_000, 4000, 4, alpha=1.4, seed=5)
        params = default_parameters(dist, hash_table_entries=64)
        stream = run_algorithm(
            "streaming_pre_aggregation", dist, sum_query, params=params
        )
        a2p = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        assert (
            stream.metrics.total_bytes_sent < a2p.metrics.total_bytes_sent
        )
