"""Unit tests for NodeContext helpers and BlockedChannel."""

import pytest

from repro.costmodel.params import SystemParameters
from repro.sim.events import Compute, Send
from repro.sim.node import BlockedChannel, NodeContext


@pytest.fixture
def ctx():
    params = SystemParameters.implementation()  # 2 KB blocks
    return NodeContext(0, 8, params)


class TestChargeHelpers:
    def test_select_cpu(self, ctx):
        req = ctx.select_cpu(100)
        p = ctx.params
        assert req.seconds == pytest.approx(100 * (p.t_r + p.t_w))
        assert req.tag == "select_cpu"

    def test_local_agg_cpu(self, ctx):
        p = ctx.params
        assert ctx.local_agg_cpu(10).seconds == pytest.approx(
            10 * (p.t_r + p.t_h + p.t_a)
        )

    def test_repart_select_cpu(self, ctx):
        p = ctx.params
        assert ctx.repart_select_cpu(10).seconds == pytest.approx(
            10 * (p.t_r + p.t_w + p.t_h + p.t_d)
        )

    def test_merge_cpu(self, ctx):
        p = ctx.params
        assert ctx.merge_cpu(10).seconds == pytest.approx(
            10 * (p.t_r + p.t_a)
        )

    def test_result_cpu(self, ctx):
        assert ctx.result_cpu(4).seconds == pytest.approx(
            4 * ctx.params.t_w
        )

    def test_pages_of(self, ctx):
        assert ctx.pages_of(ctx.params.page_bytes * 2.5) == 2.5

    def test_send_builds_message(self, ctx):
        req = ctx.send(3, "raw", payload=[1], nbytes=16)
        assert isinstance(req, Send)
        assert req.message.src == 0
        assert req.message.dst == 3
        assert req.message.nbytes == 16

    def test_log_without_engine_is_noop(self, ctx):
        ctx.log("anything")  # must not raise


class TestBlockedChannel:
    def test_ships_when_block_full(self, ctx):
        # 2048-byte blocks, 16-byte items: 128 per block.
        chan = BlockedChannel(ctx, "raw", item_bytes=16)
        sends = []
        for i in range(300):
            send = chan.push(1, i)
            if send is not None:
                sends.append(send)
        assert len(sends) == 2
        assert all(len(s.message.payload) == 128 for s in sends)
        assert all(s.message.nbytes == 2048 for s in sends)

    def test_flush_drains_partials(self, ctx):
        chan = BlockedChannel(ctx, "raw", item_bytes=16)
        chan.push(0, "a")
        chan.push(2, "b")
        sends = chan.flush()
        assert sorted(s.message.dst for s in sends) == [0, 2]
        assert all(s.message.nbytes == 16 for s in sends)

    def test_flush_empty(self, ctx):
        assert BlockedChannel(ctx, "x", 16).flush() == []

    def test_no_item_lost(self, ctx):
        chan = BlockedChannel(ctx, "raw", item_bytes=100)
        shipped = []
        for i in range(1000):
            send = chan.push(i % 4, i)
            if send is not None:
                shipped.extend(send.message.payload)
        for send in chan.flush():
            shipped.extend(send.message.payload)
        assert sorted(shipped) == list(range(1000))
        assert chan.items_pushed == 1000

    def test_items_bigger_than_block_ship_singly(self, ctx):
        chan = BlockedChannel(ctx, "raw", item_bytes=5000)
        send = chan.push(1, "huge")
        assert send is not None
        assert len(send.message.payload) == 1

    def test_invalid_item_bytes(self, ctx):
        with pytest.raises(ValueError):
            BlockedChannel(ctx, "raw", item_bytes=0)
