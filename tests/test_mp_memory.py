"""Rung 4 of the ladder: the mp executor's budgeted retry path."""

import pytest

from tests.conftest import assert_rows_close

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import multiprocessing_aggregate, reference_aggregate
from repro.parallel.mp_executor import FragmentFailedError, _GovernedPhase
from repro.resources import MemoryExceededError
from repro.workloads.generator import generate_uniform

TIGHT_BUDGET = 1500  # far below what 400 groups of partials need


@pytest.fixture
def dist():
    return generate_uniform(
        num_tuples=2000, num_groups=400, num_nodes=4, seed=3
    )


@pytest.fixture
def query():
    return AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )


class TestWatchdog:
    def test_raises_with_high_water_mark(self, dist, query):
        job = (dist.fragments[0].relation.rows, query, dist.schema)
        phase = _GovernedPhase(TIGHT_BUDGET, spill=False)
        with pytest.raises(MemoryExceededError) as info:
            phase(job)
        err = info.value
        assert err.operator == "mp_local_phase"
        assert err.budget_bytes == TIGHT_BUDGET
        assert 0 < err.high_water_bytes <= TIGHT_BUDGET
        assert err.requested_bytes > 0

    def test_fits_when_budget_is_ample(self, dist, query):
        job = (dist.fragments[0].relation.rows, query, dist.schema)
        ample = _GovernedPhase(10**9, spill=False)(job)
        spilled = _GovernedPhase(TIGHT_BUDGET, spill=True)(job)
        assert sorted(k for k, _ in ample) == sorted(k for k, _ in spilled)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            _GovernedPhase(0, spill=False)


class TestRetryLadder:
    """An over-budget fragment must complete exactly via spill retries."""

    def test_survives_oom_with_processes(self, dist, query):
        expected = reference_aggregate(dist, query)
        got = multiprocessing_aggregate(
            dist, query, processes=2,
            memory_budget_bytes=TIGHT_BUDGET,
        )
        assert_rows_close(got, expected)

    def test_survives_oom_in_process(self, dist, query):
        expected = reference_aggregate(dist, query)
        got = multiprocessing_aggregate(
            dist, query, processes=1,
            memory_budget_bytes=TIGHT_BUDGET,
        )
        assert_rows_close(got, expected)

    def test_no_retries_means_oom_is_fatal(self, dist, query):
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, query, processes=1, max_retries=0,
                memory_budget_bytes=TIGHT_BUDGET,
            )
        assert "MemoryExceededError" in info.value.cause

    def test_generous_budget_never_trips(self, dist, query):
        expected = reference_aggregate(dist, query)
        got = multiprocessing_aggregate(
            dist, query, processes=1, max_retries=0,
            memory_budget_bytes=10**9,
        )
        assert_rows_close(got, expected)


class TestArgumentValidation:
    def test_budget_and_phase_fn_are_exclusive(self, dist, query):
        with pytest.raises(ValueError, match="not both"):
            multiprocessing_aggregate(
                dist, query, phase_fn=lambda job: [],
                memory_budget_bytes=100,
            )

    def test_budget_must_be_positive(self, dist, query):
        with pytest.raises(ValueError, match="positive"):
            multiprocessing_aggregate(
                dist, query, memory_budget_bytes=0
            )
