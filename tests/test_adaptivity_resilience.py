"""Wrong-decision resilience: the adaptive safety nets must compose.

The paper's Section 3.3 argument: A-Rep falls back to *Adaptive* Two
Phase precisely so that a wrong "too few groups" judgement is not fatal
— the A-2P layer will switch back to repartitioning when its table
overflows.  These tests force each decision to be wrong and check both
correctness and the expected chain of switches.
"""

import pytest

from repro.core.runner import default_parameters, run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


class TestARepWrongFallback:
    """Force A-Rep to abandon Rep on a relation with MANY groups."""

    @pytest.fixture
    def many_groups(self):
        return generate_uniform(8000, 3000, 4, seed=0)

    def test_forced_fallback_recovers_via_a2p(
        self, many_groups, sum_query
    ):
        params = default_parameters(many_groups, hash_table_entries=50)
        out = run_algorithm(
            "adaptive_repartitioning",
            many_groups,
            sum_query,
            params=params,
            # Absurd threshold: every node judges "too few groups".
            arep_switch_groups=1_000_000,
            init_seg=200,
        )
        # The wrong fallback happened...
        assert out.events_named("switch_to_two_phase")
        # ...and the A-2P safety net fired on the overflowing tables.
        assert out.events_named("switch_to_repartitioning")
        # Correctness survives the double switch.
        assert_rows_close(
            out.rows, reference_aggregate(many_groups, sum_query)
        )

    def test_double_switch_costs_more_than_honest_rep(
        self, many_groups, sum_query
    ):
        params = default_parameters(many_groups, hash_table_entries=50)
        wrong = run_algorithm(
            "adaptive_repartitioning",
            many_groups,
            sum_query,
            params=params,
            arep_switch_groups=1_000_000,
            init_seg=200,
        )
        honest = run_algorithm(
            "repartitioning", many_groups, sum_query, params=params
        )
        assert wrong.elapsed_seconds > honest.elapsed_seconds


class TestARepNeverJudges:
    def test_init_seg_larger_than_fragment(self, sum_query):
        """A node that never sees init_seg tuples just stays with Rep."""
        dist = generate_uniform(2000, 10, 4, seed=1)
        out = run_algorithm(
            "adaptive_repartitioning",
            dist,
            sum_query,
            init_seg=10_000_000,
        )
        assert not out.events_named("switch_to_two_phase")
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))


class TestSamplingWrongChoice:
    def test_forced_wrong_choice_still_correct(self, sum_query):
        """A threshold of 1 forces Repartitioning on 2-group data —
        half the cluster idles and the whole relation crosses the bus —
        slow but exact (the decision is about speed, never answers)."""
        dist = generate_uniform(20_000, 2, 4, seed=2)
        forced_rep = run_algorithm(
            "sampling", dist, sum_query, sampling_threshold=1
        )
        assert (
            forced_rep.events_named("sampling_decision")[0]
            .detail["choice"]
            == "repartitioning"
        )
        assert_rows_close(
            forced_rep.rows, reference_aggregate(dist, sum_query)
        )
        # The wrong choice costs real time: on this low-cardinality data
        # the algorithm it should have picked is clearly faster.
        tp = run_algorithm("two_phase", dist, sum_query)
        rep = run_algorithm("repartitioning", dist, sum_query)
        assert tp.elapsed_seconds < rep.elapsed_seconds


class TestA2pThrashResistance:
    def test_one_entry_table_switches_immediately_and_survives(
        self, sum_query
    ):
        """M=1 is the pathological floor: the switch happens on the
        second distinct key and everything streams raw."""
        dist = generate_uniform(3000, 500, 4, seed=3)
        params = default_parameters(dist, hash_table_entries=1)
        out = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        switches = out.events_named("switch_to_repartitioning")
        assert len(switches) == 4
        for event in switches:
            assert event.detail["tuples_seen"] <= 5
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))
