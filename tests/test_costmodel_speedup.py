"""Tests for the analytical speedup companion to Figures 5-6."""

import pytest

from repro.costmodel.params import SystemParameters
from repro.costmodel.speedup import parallel_efficiency, speedup_series


@pytest.fixture(scope="module")
def params():
    return SystemParameters.paper_default()


class TestSpeedupSeries:
    def test_baseline_is_one(self, params):
        pts = speedup_series("repartitioning", params, 0.25)
        assert pts[0][2] == pytest.approx(1.0)

    def test_speedup_monotone_for_repartitioning(self, params):
        pts = speedup_series("repartitioning", params, 0.25)
        speedups = [su for _n, _t, su in pts]
        assert speedups == sorted(speedups)

    def test_superlinear_speedup_from_aggregate_memory(self, params):
        """The classic memory effect: growing the machine also grows the
        total hash-table allocation (M per node), so per-node groups
        eventually fit and the overflow I/O disappears — Repartitioning
        goes *super-linear* at S=0.25."""
        pts = speedup_series("repartitioning", params, 0.25)
        base = pts[0][0]
        n, _t, su = pts[-1]
        assert su > n / base  # 33.1x on 64 nodes vs ideal 32x

    def test_two_phase_sublinear_at_high_selectivity(self, params):
        """2P's duplicated merge work keeps it below ideal AND below
        Repartitioning at S=0.25."""
        pts = speedup_series("two_phase", params, 0.25)
        base = pts[0][0]
        n, _t, tp = pts[-1]
        assert tp < n / base
        rep = speedup_series("repartitioning", params, 0.25)[-1][2]
        assert rep > 1.15 * tp

    def test_centralized_flatlines(self, params):
        """The sequential coordinator bounds C-2P's speedup."""
        pts = speedup_series("centralized_two_phase", params, 0.25)
        assert pts[-1][2] < 2.0

    def test_validation(self, params):
        with pytest.raises(ValueError):
            speedup_series("two_phase", params, 0.25, node_counts=[])
        with pytest.raises(ValueError):
            speedup_series("two_phase", params, 0.25,
                           node_counts=[8, 2])
        with pytest.raises(KeyError):
            speedup_series("bogus", params, 0.25)


class TestParallelEfficiency:
    def test_starts_at_one(self, params):
        eff = parallel_efficiency("repartitioning", params, 0.25)
        assert eff[0][1] == pytest.approx(1.0)

    def test_two_phase_efficiency_below_one(self, params):
        for _n, e in parallel_efficiency("two_phase", params, 0.25):
            assert e <= 1.0 + 1e-9

    def test_efficiency_values_sane(self, params):
        """Even with the super-linear memory effect, efficiency stays
        within a sane band (no runaway artifacts)."""
        for name in ("repartitioning", "adaptive_repartitioning"):
            for _n, e in parallel_efficiency(name, params, 0.25):
                assert 0.5 <= e <= 1.2, name

    def test_repartitioning_efficiency_dominates_two_phase(
        self, params
    ):
        rep = dict(parallel_efficiency("repartitioning", params, 0.25))
        tp = dict(parallel_efficiency("two_phase", params, 0.25))
        assert rep[64] > tp[64]
