"""Service under storm: QPS, tail latency, and shed rate, with and
without injected faults.

A Zipf-skewed query storm (a few hot queries, a long tail of cold
ones — the popularity mix that makes the data-version-keyed result
cache earn its keep) drives :class:`~repro.service.QueryService`
directly from many client threads.  Two modes run the *same* storm:

* ``faultfree`` — the pool is healthy.
* ``faulted``  — a :class:`~repro.sim.faults.FaultPlan` kills a worker
  and injects transient read errors into every query, so the executor's
  retries, the service's query-level retry/backoff, and the circuit
  breaker all fire mid-storm.

Shape assertions: every query is accounted for (served + typed
refusals), every served row set matches the sequential reference, and
the faulted storm still serves a usable majority — degraded, not down.

Standalone use (the service acceptance path)::

    PYTHONPATH=src python benchmarks/bench_service.py

writes ``results/BENCH_service.json`` and appends a trajectory entry to
``results/baseline/TRAJECTORY.jsonl``.
"""

import os
import random
import tempfile
import threading
import time

import pytest

from conftest import report

from repro.bench.harness import FigureResult
from repro.obs.validate import validate_file as validate_qlog_file
from repro.parallel import reference_aggregate
from repro.parallel.mp_executor import (
    reset_pool_breaker,
    shutdown_worker_pool,
)
from repro.service import (
    DeadlineMissError,
    QueryService,
    ServiceConfig,
    ShedError,
)
from repro.sim.faults import CrashFault, FaultPlan
from repro.sql.parser import parse_query
from repro.workloads.generator import generate_zipf

# Mixed selectivity: hot full-table aggregates down to cold filtered
# slices.  Rank order *is* the Zipf popularity order.
QUERIES = [
    "SELECT gkey, SUM(val), COUNT(*) FROM r GROUP BY gkey",
    "SELECT gkey, COUNT(*) FROM r GROUP BY gkey",
    "SELECT gkey, AVG(val) FROM r GROUP BY gkey",
    "SELECT gkey, SUM(val) FROM r WHERE val >= 25.0 GROUP BY gkey",
    "SELECT gkey, MIN(val), MAX(val) FROM r GROUP BY gkey",
    "SELECT gkey, COUNT(*) FROM r WHERE val >= 75.0 GROUP BY gkey",
]
ZIPF_EXPONENT = 1.2
CLIENTS = 4
REQUESTS_PER_CLIENT = 8
MODES = ("faultfree", "faulted")

_FAULT_PLAN = FaultPlan(
    seed=23,
    crashes=(CrashFault(1, at_time=0.003),),
    read_error_rate=0.05,
)


def _dataset():
    return generate_zipf(num_tuples=2400, num_groups=48, num_nodes=4,
                         alpha=1.0, seed=31)


def _zipf_picks(rng: random.Random, count: int) -> list[str]:
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT
               for rank in range(len(QUERIES))]
    return rng.choices(QUERIES, weights=weights, k=count)


def _rows_close(actual, expected, tol: float = 1e-9) -> bool:
    """Row-set equality with relative float tolerance (parallel sums
    accumulate in a different order than the sequential reference)."""
    if len(actual) != len(expected):
        return False
    for row_a, row_e in zip(actual, expected):
        if len(row_a) != len(row_e):
            return False
        for a, e in zip(row_a, row_e):
            if isinstance(a, float) or isinstance(e, float):
                if abs(a - e) > tol * max(1.0, abs(e)):
                    return False
            elif a != e:
                return False
    return True


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _storm(mode: str, dist, expected: dict) -> dict:
    """One storm run; returns the figure row plus correctness evidence."""
    reset_pool_breaker()
    shutdown_worker_pool()
    service = QueryService(ServiceConfig(
        max_concurrency=3, queue_depth=4, processes=2,
        default_timeout_seconds=120.0,
        faults=_FAULT_PLAN if mode == "faulted" else None,
    ))
    service.register_table("r", dist)

    latencies: list[float] = []
    served: list[tuple[str, list]] = []
    refused = {"shed": 0, "deadline_miss": 0}
    wrong: list[str] = []
    lock = threading.Lock()

    def client(seed: int) -> None:
        rng = random.Random(seed)
        for sql in _zipf_picks(rng, REQUESTS_PER_CLIENT):
            started = time.monotonic()
            try:
                outcome = service.submit(sql)
            except ShedError:
                with lock:
                    refused["shed"] += 1
                continue
            except DeadlineMissError:
                with lock:
                    refused["deadline_miss"] += 1
                continue
            elapsed = time.monotonic() - started
            ok = _rows_close(outcome.rows, expected[sql])
            with lock:
                latencies.append(elapsed)
                served.append((sql, outcome.rows))
                if not ok:
                    wrong.append(sql)

    started = time.monotonic()
    threads = [threading.Thread(target=client, args=(97 + i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    drained_clean = service.drain()

    latencies.sort()
    counter = service.metrics.counter
    return {
        "mode": mode,
        "queries": CLIENTS * REQUESTS_PER_CLIENT,
        "served": len(served),
        "shed": refused["shed"],
        "deadline_misses": refused["deadline_miss"],
        "qps": len(served) / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "cache_hits": counter("svc.cache.hits").value,
        "retries": counter("svc.retries").value,
        "wrong_results": len(wrong),
        "drained_clean": drained_clean,
    }


COLUMNS = ["mode", "queries", "served", "shed", "deadline_misses",
           "qps", "p50_ms", "p99_ms", "cache_hits", "retries"]


def service_storm_sweep() -> FigureResult:
    dist = _dataset()
    expected = {
        sql: reference_aggregate(dist, parse_query(sql)[1])
        for sql in QUERIES
    }
    result = FigureResult(
        figure="service",
        title="Query service under Zipf storm: QPS / tail / shed rate",
        columns=COLUMNS,
        notes=(
            f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} queries, "
            f"Zipf({ZIPF_EXPONENT}) over {len(QUERIES)} query shapes; "
            "faulted mode injects a worker kill + 5% read errors per "
            "query (seed 23). Every served row set is checked against "
            "the sequential reference; a wrong result fails the bench."
        ),
    )
    for mode in MODES:
        row = _storm(mode, dist, expected)
        assert row["wrong_results"] == 0, (
            f"{mode}: {row['wrong_results']} served queries returned "
            "wrong rows"
        )
        assert row["drained_clean"], f"{mode}: drain left work behind"
        assert row["served"] + row["shed"] + row["deadline_misses"] \
            == row["queries"]
        result.add_row(*[row[name] for name in COLUMNS])
    return result


# -- observability overhead gate ----------------------------------------------
#
# The same faultfree Zipf storm runs twice: once with live observability
# fully disabled, once with the whole stack on (per-query tracer, latency
# and queue-wait histograms, flight recorder, JSONL query log).  The gate
# is p99_on <= p99_off * 1.05 + 25ms — five percent plus an absolute
# floor, because with a small sample p99 is one scheduling hiccup away
# from the max and a pure ratio would flake on loaded CI machines.

OBS_COLUMNS = ["mode", "queries", "served", "shed", "qps",
               "p50_ms", "p99_ms", "qlog_records"]
OBS_P99_RATIO = 1.05
OBS_P99_FLOOR_MS = 25.0


def _overhead_storm(mode: str, dist, overrides: dict) -> dict:
    reset_pool_breaker()
    shutdown_worker_pool()
    service = QueryService(ServiceConfig(
        max_concurrency=3, queue_depth=4, processes=2,
        default_timeout_seconds=120.0, **overrides,
    ))
    service.register_table("r", dist)
    # Warm the pool and plan cache so neither mode's tail is pool
    # startup; the storm then measures the steady-state request path
    # (cache hits included — that is where per-query bookkeeping is the
    # largest relative cost).
    service.submit(QUERIES[0])

    latencies: list[float] = []
    shed = [0]
    lock = threading.Lock()

    def client(seed: int) -> None:
        rng = random.Random(seed)
        for sql in _zipf_picks(rng, REQUESTS_PER_CLIENT):
            started = time.monotonic()
            try:
                service.submit(sql)
            except (ShedError, DeadlineMissError):
                with lock:
                    shed[0] += 1
                continue
            elapsed = time.monotonic() - started
            with lock:
                latencies.append(elapsed)

    started = time.monotonic()
    threads = [threading.Thread(target=client, args=(131 + i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    assert service.drain(), f"{mode}: drain left work behind"

    qlog_records = 0
    qlog_path = overrides.get("query_log_path")
    if qlog_path is not None:
        problems = validate_qlog_file(qlog_path)
        assert problems == [], f"{mode}: invalid query log: {problems}"
        with open(qlog_path) as handle:
            qlog_records = sum(1 for line in handle if line.strip())
        assert qlog_records == len(latencies) + shed[0] + 1  # +1 warmup

    latencies.sort()
    return {
        "mode": mode,
        "queries": CLIENTS * REQUESTS_PER_CLIENT,
        "served": len(latencies),
        "shed": shed[0],
        "qps": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "qlog_records": qlog_records,
    }


def observability_overhead_sweep() -> FigureResult:
    dist = _dataset()
    result = FigureResult(
        figure="service_obs",
        title="Live observability overhead: p99 on vs off",
        columns=OBS_COLUMNS,
        notes=(
            f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} queries, same "
            "faultfree Zipf storm twice: live observability off, then "
            "on (tracer + histograms + flight recorder + JSONL query "
            f"log). Gate: p99_on <= p99_off * {OBS_P99_RATIO} + "
            f"{OBS_P99_FLOOR_MS}ms."
        ),
    )
    with tempfile.TemporaryDirectory(prefix="repro_obs_bench_") as tmp:
        rows = [
            _overhead_storm("obs_off", dist,
                            {"live_observability": False}),
            _overhead_storm("obs_on", dist, {
                "live_observability": True,
                "query_log_path": os.path.join(tmp, "qlog.jsonl"),
                "slow_trace_threshold_seconds": 0.0,
            }),
        ]
    for row in rows:
        result.add_row(*[row[name] for name in OBS_COLUMNS])
    p99 = {row["mode"]: row["p99_ms"] for row in rows}
    assert p99["obs_on"] <= (
        p99["obs_off"] * OBS_P99_RATIO + OBS_P99_FLOOR_MS
    ), (
        f"observability overhead gate: p99 on={p99['obs_on']:.3f}ms "
        f"off={p99['obs_off']:.3f}ms exceeds "
        f"{OBS_P99_RATIO}x + {OBS_P99_FLOOR_MS}ms"
    )
    return result


def test_observability_overhead(benchmark):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("POSIX shared memory not mounted")
    result = benchmark.pedantic(observability_overhead_sweep, rounds=1,
                                iterations=1)
    report(result)
    served = result.column("served")
    assert all(count >= result.column("queries")[0] // 2
               for count in served)
    # The on-mode must actually have logged the whole storm.
    by_mode = dict(zip(result.column("mode"),
                       result.column("qlog_records")))
    assert by_mode["obs_off"] == 0
    assert by_mode["obs_on"] >= by_mode["obs_off"]


def test_service_storm(benchmark):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("POSIX shared memory not mounted")
    result = benchmark.pedantic(service_storm_sweep, rounds=1,
                                iterations=1)
    report(result)
    served = result.column("served")
    # Both modes must serve a usable majority: overload sheds are
    # allowed, a dead service is not.
    for mode, count in zip(result.column("mode"), served):
        assert count >= result.column("queries")[0] // 2, (
            f"{mode} served only {count}"
        )
    # The Zipf skew concentrates repeats on a few hot queries, so the
    # cache must actually serve some of the storm.
    assert all(hits >= 1 for hits in result.column("cache_hits"))


def _main(argv=None) -> int:
    import argparse
    import json
    import sys

    from repro.bench.harness import (
        format_table,
        write_bench_json,
        write_results,
    )
    from repro.bench.regression import append_trajectory, trajectory_entry

    parser = argparse.ArgumentParser(
        description="Run the service storm bench outside pytest."
    )
    parser.add_argument(
        "--label", default="service-storm",
        help="trajectory label for the artifact",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir("/dev/shm"):
        print("service bench needs POSIX shared memory (/dev/shm)",
              file=sys.stderr)
        return 2

    results_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "results")
    )
    baseline_dir = os.path.join(results_dir, "baseline")

    started = time.monotonic()
    figure = service_storm_sweep()
    storm_wall = time.monotonic() - started
    started = time.monotonic()
    obs_figure = observability_overhead_sweep()
    obs_wall = time.monotonic() - started
    wall = storm_wall + obs_wall
    write_results(figure, directory=results_dir)
    write_results(obs_figure, directory=results_dir)
    print(format_table(figure))
    print(format_table(obs_figure))

    tests = [{
        "nodeid": "benchmarks/bench_service.py::service_storm_sweep",
        "outcome": "passed",
        "wall_seconds": storm_wall,
    }, {
        "nodeid": ("benchmarks/bench_service.py::"
                   "observability_overhead_sweep"),
        "outcome": "passed",
        "wall_seconds": obs_wall,
    }]
    modes = figure.column("mode")
    metrics = {
        "tests": 2,
        "failed": 0,
        "wall_seconds_total": wall,
        "figures": 2,
    }
    for i, mode in enumerate(modes):
        metrics[f"{mode}_qps"] = figure.column("qps")[i]
        metrics[f"{mode}_p99_ms"] = figure.column("p99_ms")[i]
        metrics[f"{mode}_shed"] = figure.column("shed")[i]
    for i, mode in enumerate(obs_figure.column("mode")):
        metrics[f"{mode}_p99_ms"] = obs_figure.column("p99_ms")[i]
    path = write_bench_json(
        "service", tests, [figure, obs_figure], metrics,
        directory=results_dir
    )
    print(f"wrote {path}")
    if os.path.isdir(baseline_dir):
        with open(path) as handle:
            doc = json.load(handle)
        entry = trajectory_entry(args.label, {"service": doc})
        print(f"appended to {append_trajectory(baseline_dir, entry)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
