"""Hardware sensitivity of the 2P/Rep crossover — the quantitative form
of the paper's Figure 3 vs Figure 4 contrast and its closing remark that
"in practice most PDBMSs will have high bandwidth interconnects"."""

from conftest import report

from repro.bench.harness import FigureResult
from repro.costmodel.crossover import crossover_sensitivity, find_crossover
from repro.costmodel.params import SystemParameters


def _run_sensitivity() -> FigureResult:
    params = SystemParameters.paper_default()
    result = FigureResult(
        "sensitivity",
        "Crossover selectivity S* vs hardware parameters (analytical, "
        "32 nodes)",
        ["parameter", "value", "crossover_selectivity"],
        notes="S* = where Repartitioning overtakes Two Phase; -1 means "
        "Rep never wins below S=0.5",
    )
    sweeps = {
        "msg_latency_seconds": [0.0002, 0.002, 0.02, 0.2],
        "hash_table_entries": [1_000, 10_000, 100_000, 1_000_000],
        "io_seconds": [0.0001, 0.00115, 0.01],
        "mips": [10, 40, 400],
    }
    for parameter, values in sweeps.items():
        for value, s_star in crossover_sensitivity(
            params, parameter, values
        ):
            result.add_row(
                parameter, value, -1.0 if s_star is None else s_star
            )
    return result


def test_crossover_sensitivity(benchmark):
    result = benchmark.pedantic(_run_sensitivity, rounds=1, iterations=1)
    report(result)
    rows = {
        (r[0], r[1]): r[2] for r in result.rows
    }

    def star(parameter, value):
        s = rows[(parameter, value)]
        return float("inf") if s == -1.0 else s

    # Slower network -> later crossover (Figure 4's lesson).
    assert star("msg_latency_seconds", 0.0002) < star(
        "msg_latency_seconds", 0.02
    )
    # More memory keeps Two Phase viable longer.
    assert star("hash_table_entries", 1_000) < star(
        "hash_table_entries", 1_000_000
    )
    # Faster disks shrink 2P's spill penalty -> later crossover.
    assert star("io_seconds", 0.0001) >= star("io_seconds", 0.01)
    # The default configuration has a real crossover inside the range.
    baseline = find_crossover(SystemParameters.paper_default())
    assert baseline is not None and 1e-5 < baseline < 0.5