"""Where the time goes: resource-family breakdowns behind Figures 1-4."""

from conftest import report

from repro.bench.harness import FigureResult
from repro.costmodel.params import NetworkKind, SystemParameters
from repro.costmodel.report import FAMILIES, breakdown_table

ALGOS = ("two_phase", "repartitioning", "adaptive_two_phase")


def _run_breakdowns() -> FigureResult:
    result = FigureResult(
        "cost_breakdown",
        "Analytical cost by resource family (32 nodes)",
        ["selectivity", "network_kind", "algorithm", *FAMILIES, "total"],
    )
    for kind in (NetworkKind.HIGH_BANDWIDTH,
                 NetworkKind.LIMITED_BANDWIDTH):
        params = SystemParameters.paper_default().with_(network=kind)
        for selectivity in (1e-6, 0.5):
            for row in breakdown_table(params, selectivity, ALGOS):
                result.add_row(selectivity, kind.value, *row)
    return result


def test_cost_breakdown(benchmark):
    result = benchmark.pedantic(_run_breakdowns, rounds=1, iterations=1)
    report(result)
    rows = {
        (r[0], r[1], r[2]): dict(zip([*FAMILIES, "total"], r[3:]))
        for r in result.rows
    }
    fast, slow = "high_bandwidth", "limited_bandwidth"

    # At high selectivity, 2P's loss is overflow I/O + CPU duplication.
    tp = rows[(0.5, fast, "two_phase")]
    rep = rows[(0.5, fast, "repartitioning")]
    assert tp["overflow_io"] > rep["overflow_io"]
    assert tp["cpu"] > rep["cpu"]

    # On the slow bus, Rep's network family dominates its own total.
    rep_slow = rows[(0.5, slow, "repartitioning")]
    assert rep_slow["network"] > 0.5 * rep_slow["total"]

    # At one group everything is scan-I/O bound for the 2P family.
    tp_low = rows[(1e-6, fast, "two_phase")]
    assert tp_low["base_io"] > 0.4 * tp_low["total"]

    # Totals are consistent with the family sums.
    for families in rows.values():
        total = sum(families[f] for f in FAMILIES)
        assert abs(total - families["total"]) < 1e-9
