"""Figure 5: scaleup at selectivity 2.0e-6 (analytical).

Expected shape: everything that ends up running Two Phase scales almost
ideally (flat at 1.0); Sampling is slightly below ideal because its
sample size is a constant per processor (threshold = 100 N).
"""

from conftest import report

from repro.bench import figures


def test_fig5_scaleup_low_selectivity(benchmark):
    result = benchmark.pedantic(figures.figure5, rounds=1, iterations=1)
    report(result)

    for name in ("two_phase", "adaptive_two_phase",
                 "adaptive_repartitioning"):
        series = result.column(name)
        assert all(su >= 0.95 for su in series), name
    # Sampling stays good but need not be perfect.
    assert all(su >= 0.85 for su in result.column("sampling"))
    assert result.column("num_nodes")[0] == 2
