"""Figure 4: the same series on the 8-node, limited-bandwidth (Ethernet)
configuration with a 2M-tuple relation (analytical).

Expected shape: the slow bus makes Repartitioning expensive, so the right
strategy is to repartition only when memory overflow would otherwise force
intermediate I/O — A-2P does exactly that and suffers least.
"""

from conftest import report

from repro.bench import figures


def test_fig4_low_bandwidth_network(benchmark):
    result = benchmark.pedantic(figures.figure4, rounds=1, iterations=1)
    report(result)

    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    a2p = result.column("adaptive_two_phase")
    arep = result.column("adaptive_repartitioning")

    # The network dominates Rep even at low selectivity on Ethernet.
    assert rep[0] > 2 * tp[0]
    # Rep still wins the duplicate-elimination end (spill I/O beats bus).
    assert rep[-1] < tp[-1]
    # A-2P never repartitions without need: it stays close to 2P at the
    # bottom and close to Rep at the top.
    assert a2p[0] < 1.1 * tp[0]
    assert a2p[-1] < 1.35 * rep[-1]
    # A-Rep recovers from its bad start once it detects few groups.
    assert arep[0] < rep[0]
