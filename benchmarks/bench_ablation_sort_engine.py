"""Hash vs sort local aggregation — the [BBDW83] related-work baseline."""

from conftest import report

from repro.bench.figures import SIM_NODES, SIM_QUERY, SIM_TUPLES
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform


def _run_sort_vs_hash() -> FigureResult:
    result = FigureResult(
        "ablation_sort_engine",
        "Two Phase with hash vs sort local aggregation (simulator)",
        ["num_groups", "hash_engine", "sort_engine"],
        notes="same cost charges; the engines differ in spill pattern "
        "(overflow buckets vs sorted runs)",
    )
    for groups in (8, 1600, 20_000):
        dist = generate_uniform(SIM_TUPLES, groups, SIM_NODES, seed=0)
        params = default_parameters(dist)
        times = []
        for method in ("hash", "sort"):
            out = run_algorithm(
                "two_phase",
                dist,
                SIM_QUERY,
                params=params,
                local_method=method,
            )
            times.append(out.elapsed_seconds)
        result.add_row(groups, *times)
    return result


def test_ablation_sort_vs_hash_engine(benchmark):
    result = benchmark.pedantic(_run_sort_vs_hash, rounds=1, iterations=1)
    report(result)
    hash_series = result.column("hash_engine")
    sort_series = result.column("sort_engine")
    # Under the shared cost model the engines land close to each other;
    # both must show the same selectivity trend.
    for h, s in zip(hash_series, sort_series):
        assert abs(h - s) < 0.5 * h
    assert hash_series[-1] > hash_series[0]
    assert sort_series[-1] > sort_series[0]
