"""Figure 7: the sample size / performance trade-off (analytical, 32
nodes, limited-bandwidth network).

Expected shape: a larger sample (larger crossover threshold) costs more up
front but avoids running Repartitioning in the middle range, where the
slow network makes Rep a bad call; a small sample is cheapest at the
extremes.
"""

from conftest import report

from repro.bench import figures


def test_fig7_sample_size_tradeoff(benchmark):
    result = benchmark.pedantic(figures.figure7, rounds=1, iterations=1)
    report(result)

    small = result.column("samp_threshold_80")
    large = result.column("samp_threshold_5120")
    sels = result.column("selectivity")

    # At the very low end the small sample wins (less sampling I/O).
    assert small[0] < large[0]
    # In the middle range the small threshold misclassifies: it runs
    # Repartitioning over the slow bus while the large threshold keeps
    # Two Phase — the large sample must win somewhere in the middle.
    mid = [
        i
        for i, s in enumerate(sels)
        if 80 / 8e6 < s < 5120 / 8e6
    ]
    assert any(large[i] < small[i] for i in mid)
    # At the top everyone correctly repartitions; costs converge to
    # within the sampling-cost difference.
    assert abs(large[-1] - small[-1]) < 0.25 * small[-1]
