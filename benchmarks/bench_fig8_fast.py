"""Figure 8's fast-network companion: the Figure 3 vs 4 contrast, but
measured on the event simulator instead of the analytical model.

Expected shape: with SP-2-like bandwidth, Repartitioning becomes
attractive at far lower group counts than on Ethernet — the first sweep
point where Rep beats 2P moves left relative to fig8.
"""

from conftest import report

from repro.bench import figures


def _first_rep_win(result):
    groups = result.column("num_groups")
    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    for g, a, b in zip(groups, tp, rep):
        if b < a:
            return g
    return float("inf")


def test_fig8_fast_network(benchmark):
    result = benchmark.pedantic(
        figures.figure8_fast_network, rounds=1, iterations=1
    )
    report(result)
    ethernet = figures.figure8()

    # The same endpoints behave as in fig8...
    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    assert tp[0] < rep[0]
    assert rep[-1] < tp[-1]
    # ...but the crossover moves left on the fast network.
    assert _first_rep_win(result) <= _first_rep_win(ethernet)
    # And Rep's low-selectivity penalty shrinks dramatically vs Ethernet.
    eth_penalty = ethernet.column("repartitioning")[1] / ethernet.column(
        "two_phase"
    )[1]
    fast_penalty = rep[1] / tp[1]
    assert fast_penalty < eth_penalty
