"""Figure 6: scaleup at selectivity 0.25 (analytical).

Expected shape: Repartitioning and both adaptive algorithms scale almost
ideally; plain Two Phase falls visibly below 1.0 (duplicated merge work
grows with N); Sampling tracks Repartitioning minus its constant
per-processor overhead.
"""

from conftest import report

from repro.bench import figures


def test_fig6_scaleup_high_selectivity(benchmark):
    result = benchmark.pedantic(figures.figure6, rounds=1, iterations=1)
    report(result)

    assert all(su >= 0.99 for su in result.column("repartitioning"))
    for name in ("adaptive_two_phase", "adaptive_repartitioning"):
        assert all(su >= 0.95 for su in result.column(name)), name
    tp = result.column("two_phase")
    assert tp[-1] < 0.95
    a2p = result.column("adaptive_two_phase")
    assert a2p[-1] > tp[-1]
