"""Table 1: the analytical model parameters, rendered from code."""

from conftest import report

from repro.bench import figures


def test_table1_parameters(benchmark):
    result = benchmark.pedantic(figures.table1, rounds=1, iterations=1)
    report(result)
    symbols = result.column("symbol")
    assert symbols[0] == "N"
    assert "M" in symbols
    # Sanity of the headline values as printed in the paper.
    values = dict(zip(symbols, result.column("value")))
    assert values["N"] == 32
    assert values["|R|"] == 8_000_000
    assert values["M"] == 10_000
