"""Simulator-side scaleup and speedup (extensions of Figures 5-6)."""

from conftest import report

from repro.bench import scaling


def test_sim_scaleup_high_selectivity(benchmark):
    """The Figure 6 experiment re-run on the event simulator."""
    result = benchmark.pedantic(
        scaling.sim_scaleup, rounds=1, iterations=1
    )
    report(result)
    rep = result.column("repartitioning")
    tp = result.column("two_phase")
    a2p = result.column("adaptive_two_phase")
    # Repartitioning scales better than plain Two Phase at S=0.25.
    assert rep[-1] > tp[-1]
    # The adaptive algorithm follows the scalable strategy.
    assert a2p[-1] > 0.9 * rep[-1]
    # Nothing super-scales past ideal by more than noise.
    assert all(v <= 1.35 for v in rep + tp + a2p)


def test_sim_speedup(benchmark):
    """Fixed data, growing machine: everyone speeds up; the parallel-
    merge algorithms speed up the most."""
    result = benchmark.pedantic(scaling.sim_speedup, rounds=1, iterations=1)
    report(result)
    for name in ("two_phase", "repartitioning", "adaptive_two_phase"):
        series = result.column(name)
        # Monotone improvement with machine size.
        assert all(b >= a * 0.95 for a, b in zip(series, series[1:])), name
        # Real speedup by 16 nodes (ideal would be 8x from the 2-node base).
        assert series[-1] > 2.0, name
