"""Shared reporting for the figure benchmarks.

Each bench regenerates one paper table/figure, asserts its qualitative
shape, writes the series to ``results/<figure>.{csv,txt}``, and prints the
table straight to the terminal (bypassing pytest's capture) so a plain
``pytest benchmarks/ --benchmark-only`` run shows the regenerated series.

Every executed ``bench_<name>.py`` module additionally emits a
machine-readable ``results/BENCH_<name>.json`` (schema ``repro-bench/1``:
per-test wall timings, the regenerated figure series, and a metrics
snapshot), collected here via pytest hooks so individual bench files stay
unchanged.  ``python -m repro.obs.validate results/BENCH_*.json`` checks
the artifacts; CI's bench-smoke job runs exactly that.
"""

from __future__ import annotations

import os
import sys
import time

from repro.bench.harness import (
    FigureResult,
    format_table,
    write_bench_json,
    write_results,
)
from repro.parallel import mp_executor
from repro.workloads.generator import generate_uniform, selectivity_to_groups

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

# The Figure-2 evaluation tuple both throughput benches sweep: 100-byte
# tuples (group key, float value, padding), uniform groups, declustered
# round-robin.  ``STR_KEY_FORMAT`` turns the int key into the 16-byte
# dictionary-coded string key of the columnar experiments.
STR_KEY_FORMAT = "g{:08d}"


def fig2_workload(
    num_tuples: int,
    selectivity: float,
    num_nodes: int,
    seed: int = 42,
    key_format: str | None = None,
    columnar: bool = True,
):
    """The shared Fig-2 workload (uniform, round-robin, exact groups).

    ``columnar=False`` materializes row tuples at generation time — the
    seed/reference data path; the default emits block-born fragments.
    """
    return generate_uniform(
        num_tuples=num_tuples,
        num_groups=selectivity_to_groups(selectivity, num_tuples),
        num_nodes=num_nodes,
        seed=seed,
        key_format=key_format,
        columnar=columnar,
    )


def best_run(dist, query, strategy, *, processes, repeats):
    """Best-of-``repeats`` wall seconds (and the result, for parity)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = mp_executor.multiprocessing_aggregate(
            dist, query, processes=processes, strategy=strategy
        )
        best = min(best, time.perf_counter() - t0)
    return best, result

# Per-bench-module collection for the BENCH_<name>.json artifacts:
# module stem (minus the "bench_" prefix) -> figures / test records.
_FIGURES: dict[str, list[FigureResult]] = {}
_TESTS: dict[str, list[dict]] = {}


def _stem(path: str) -> str | None:
    """"benchmarks/bench_fig2.py" -> "fig2" (None for non-bench files)."""
    base = os.path.basename(str(path))
    if not (base.startswith("bench_") and base.endswith(".py")):
        return None
    return base[len("bench_"):-len(".py")]


def report(result: FigureResult) -> FigureResult:
    write_results(result, directory=os.path.abspath(RESULTS_DIR))
    sys.__stdout__.write(f"\n{format_table(result)}\n")
    sys.__stdout__.flush()
    # Attribute the figure to the bench module that produced it, for
    # that module's BENCH_<name>.json.
    caller_file = sys._getframe(1).f_globals.get("__file__")
    stem = _stem(caller_file) if caller_file else None
    if stem is not None:
        _FIGURES.setdefault(stem, []).append(result)
    return result


def pytest_runtest_logreport(report):
    """Collect each bench test's outcome and wall time (call phase)."""
    if report.when != "call":
        return
    stem = _stem(report.nodeid.split("::")[0])
    if stem is None:
        return
    _TESTS.setdefault(stem, []).append(
        {
            "nodeid": report.nodeid,
            "outcome": report.outcome,
            "wall_seconds": float(report.duration),
        }
    )


def _write_bench_artifacts(directory: str) -> None:
    for stem in sorted(set(_TESTS) | set(_FIGURES)):
        tests = _TESTS.get(stem, [])
        metrics = {
            "tests": len(tests),
            "failed": sum(1 for t in tests if t["outcome"] != "passed"),
            "wall_seconds_total": sum(t["wall_seconds"] for t in tests),
            "figures": len(_FIGURES.get(stem, [])),
        }
        write_bench_json(
            stem, tests, _FIGURES.get(stem, []), metrics,
            directory=directory,
        )


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_*.json artifacts and regenerate results/SUMMARY.md."""
    directory = os.path.abspath(RESULTS_DIR)
    try:
        _write_bench_artifacts(directory)
    except Exception as exc:  # never fail the bench run over the report
        sys.__stdout__.write(f"(bench json generation skipped: {exc})\n")
    if not os.path.isdir(directory):
        return
    try:
        from repro.bench.summary import write_summary

        write_summary(directory)
    except Exception as exc:  # never fail the bench run over the report
        sys.__stdout__.write(f"(summary generation skipped: {exc})\n")
