"""Shared reporting for the figure benchmarks.

Each bench regenerates one paper table/figure, asserts its qualitative
shape, writes the series to ``results/<figure>.{csv,txt}``, and prints the
table straight to the terminal (bypassing pytest's capture) so a plain
``pytest benchmarks/ --benchmark-only`` run shows the regenerated series.
"""

from __future__ import annotations

import os
import sys

from repro.bench.harness import FigureResult, format_table, write_results

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def report(result: FigureResult) -> FigureResult:
    write_results(result, directory=os.path.abspath(RESULTS_DIR))
    sys.__stdout__.write(f"\n{format_table(result)}\n")
    sys.__stdout__.flush()
    return result


def pytest_sessionfinish(session, exitstatus):
    """Regenerate results/SUMMARY.md from whatever CSVs now exist."""
    directory = os.path.abspath(RESULTS_DIR)
    if not os.path.isdir(directory):
        return
    try:
        from repro.bench.summary import write_summary

        write_summary(directory)
    except Exception as exc:  # never fail the bench run over the report
        sys.__stdout__.write(f"(summary generation skipped: {exc})\n")
