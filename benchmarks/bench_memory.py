"""The Section 2.2 memory argument, measured cluster-wide.

Two Phase accumulates each group on potentially every node (~N·|G| table
entries across the cluster); Repartitioning stores each group exactly
once (~|G|); A-2P frees its local tables when it switches.
"""

from conftest import report

from repro.bench.figures import SIM_NODES, SIM_QUERY, SIM_TUPLES
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform

CONTENDERS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "streaming_pre_aggregation",
)


def _run_memory_study() -> FigureResult:
    result = FigureResult(
        "memory",
        "Cluster-wide peak aggregate-table entries per algorithm",
        ["num_groups", *CONTENDERS],
        notes="Section 2.2: 2P ~ N*|G| entries, Rep ~ |G|; measured via "
        "ClusterMetrics.total_peak_table_entries (M uncapped for 2P/Rep "
        "comparability)",
    )
    for groups in (64, 400, 1600):
        dist = generate_uniform(SIM_TUPLES, groups, SIM_NODES, seed=0)
        # Give 2P room so its memory demand is visible, not clipped at M.
        params = default_parameters(dist, hash_table_entries=100_000)
        row = [groups]
        for name in CONTENDERS:
            out = run_algorithm(name, dist, SIM_QUERY, params=params)
            row.append(out.metrics.total_peak_table_entries)
        result.add_row(*row)
    return result


def test_memory_claim(benchmark):
    result = benchmark.pedantic(_run_memory_study, rounds=1, iterations=1)
    report(result)
    for row_idx, groups in enumerate(result.column("num_groups")):
        tp = result.column("two_phase")[row_idx]
        rep = result.column("repartitioning")[row_idx]
        # 2P holds ~N copies of every group; Rep holds one.
        assert tp >= 0.9 * SIM_NODES * groups
        assert rep <= 1.2 * groups
        assert tp > 5 * rep
