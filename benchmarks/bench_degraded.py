"""Degraded-mode sweeps: stragglers, mid-query crashes, pool speculation.

Shape assertions: a straggler stretches every algorithm monotonically
(and roughly linearly — adaptivity cannot rebalance hardware), and a
crash always costs more than the fault-free run, with later crashes
wasting more work than earlier ones.  On the real-process pool,
speculative re-execution must collapse the makespan of a straggling
fragment back toward the fault-free run.

Standalone use (the chaos acceptance path)::

    PYTHONPATH=src python benchmarks/bench_degraded.py --strategy pool

runs the real-process sweep, writes ``results/BENCH_degraded.json``,
and appends a trajectory entry to ``results/baseline/TRAJECTORY.jsonl``.
"""

import os

import pytest

from conftest import report

from repro.bench.degraded import (
    CONTENDERS,
    CRASH_CONTENDERS,
    POOL_MODES,
    crash_sweep,
    pool_speculation_sweep,
    straggler_sweep,
)


def test_straggler_sweep(benchmark):
    result = benchmark.pedantic(straggler_sweep, rounds=1, iterations=1)
    report(result)
    for name in CONTENDERS:
        series = result.column(name)
        # Monotone degradation with the slowdown factor...
        assert all(a < b for a, b in zip(series, series[1:]))
        # ...and the 8x straggler dominates the run: at least 3x overall
        # (network/merge time is not scaled, so the overall factor sits
        # below the raw CPU/disk slowdown).
        assert series[-1] > 3.0 * series[0]


def test_crash_sweep(benchmark):
    result = benchmark.pedantic(crash_sweep, rounds=1, iterations=1)
    report(result)
    for name in CRASH_CONTENDERS:
        series = result.column(name)
        baseline = series[0]
        # Every crash costs more than the fault-free run (detection +
        # restart), and a later crash wastes strictly more work.
        assert all(v > baseline for v in series[1:])
        assert all(a < b for a, b in zip(series[1:], series[2:]))


def test_pool_speculation_sweep(benchmark):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("POSIX shared memory not mounted")
    result = benchmark.pedantic(
        pool_speculation_sweep, rounds=1, iterations=1
    )
    report(result)
    assert result.column("mode") == list(POOL_MODES)
    off, on = result.column("makespan_seconds")
    # The backup runs at full speed while the primary crawls, so
    # speculation must beat the straggler decisively, not marginally.
    # (Measured ~6x on an otherwise idle box; 0.6 leaves CI headroom.)
    assert on < 0.6 * off
    launched = result.column("speculations")
    wins = result.column("backup_wins")
    assert launched[0] == 0 and wins[0] == 0
    assert launched[1] >= 1 and wins[1] >= 1


def _main(argv=None) -> int:
    import argparse
    import json
    import sys
    import time

    from repro.bench.harness import (
        format_table,
        write_bench_json,
        write_results,
    )
    from repro.bench.regression import append_trajectory, trajectory_entry

    parser = argparse.ArgumentParser(
        description="Run the degraded-mode sweeps outside pytest."
    )
    parser.add_argument(
        "--strategy",
        choices=("sim", "pool"),
        default="sim",
        help="sim: simulator straggler/crash sweeps; "
        "pool: real-process speculation sweep",
    )
    parser.add_argument(
        "--label",
        default="degraded-pool",
        help="trajectory label for the pool artifact",
    )
    args = parser.parse_args(argv)

    results_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "results")
    )
    baseline_dir = os.path.join(results_dir, "baseline")

    if args.strategy == "sim":
        for figure in (straggler_sweep(), crash_sweep()):
            write_results(figure, directory=results_dir)
            print(format_table(figure))
        return 0

    if not os.path.isdir("/dev/shm"):
        print("pool strategy needs POSIX shared memory (/dev/shm)",
              file=sys.stderr)
        return 2
    start = time.monotonic()
    figure = pool_speculation_sweep()
    wall = time.monotonic() - start
    write_results(figure, directory=results_dir)
    print(format_table(figure))

    off, on = figure.column("makespan_seconds")
    wins = figure.column("backup_wins")[1]
    if not (wins >= 1 and on < off):
        print("speculation did not improve the degraded makespan",
              file=sys.stderr)
        return 1
    print(f"speculation cut the degraded makespan {off / on:.1f}x "
          f"({off:.3f}s -> {on:.3f}s, {wins} backup win(s))")

    tests = [{
        "nodeid": "benchmarks/bench_degraded.py::pool_speculation_sweep",
        "outcome": "passed",
        "wall_seconds": wall,
    }]
    metrics = {
        "tests": 1,
        "failed": 0,
        "wall_seconds_total": wall,
        "figures": 1,
        "speedup": off / on,
    }
    path = write_bench_json(
        "degraded", tests, [figure], metrics, directory=results_dir
    )
    print(f"wrote {path}")
    if os.path.isdir(baseline_dir):
        with open(path) as handle:
            doc = json.load(handle)
        entry = trajectory_entry(args.label, {"degraded": doc})
        print(f"appended to {append_trajectory(baseline_dir, entry)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
