"""Degraded-mode sweeps: stragglers and mid-query crashes.

Shape assertions: a straggler stretches every algorithm monotonically
(and roughly linearly — adaptivity cannot rebalance hardware), and a
crash always costs more than the fault-free run, with later crashes
wasting more work than earlier ones.
"""

from conftest import report

from repro.bench.degraded import (
    CONTENDERS,
    CRASH_CONTENDERS,
    crash_sweep,
    straggler_sweep,
)


def test_straggler_sweep(benchmark):
    result = benchmark.pedantic(straggler_sweep, rounds=1, iterations=1)
    report(result)
    for name in CONTENDERS:
        series = result.column(name)
        # Monotone degradation with the slowdown factor...
        assert all(a < b for a, b in zip(series, series[1:]))
        # ...and the 8x straggler dominates the run: at least 3x overall
        # (network/merge time is not scaled, so the overall factor sits
        # below the raw CPU/disk slowdown).
        assert series[-1] > 3.0 * series[0]


def test_crash_sweep(benchmark):
    result = benchmark.pedantic(crash_sweep, rounds=1, iterations=1)
    report(result)
    for name in CRASH_CONTENDERS:
        series = result.column(name)
        baseline = series[0]
        # Every crash costs more than the fault-free run (detection +
        # restart), and a later crash wastes strictly more work.
        assert all(v > baseline for v in series[1:])
        assert all(a < b for a, b in zip(series[1:], series[2:]))
