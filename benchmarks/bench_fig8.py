"""Figure 8: the implementation experiment — all five algorithms over the
full selectivity range on the simulated 8-node Ethernet cluster.

This is the event simulator executing the real algorithms (real hash
tables, real switches) on a relation scaled 25x below the paper's 2M
tuples, with the hash-table allocation scaled alike (DESIGN.md).

Expected shape: Two Phase wins the low end; Repartitioning the high end;
both adaptive algorithms stay near the per-point best; Sampling adds a
visible constant.
"""

from conftest import report

from repro.bench import figures


def test_fig8_implementation_results(benchmark):
    result = benchmark.pedantic(figures.figure8, rounds=1, iterations=1)
    report(result)

    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    a2p = result.column("adaptive_two_phase")
    arep = result.column("adaptive_repartitioning")
    best = [min(a, b) for a, b in zip(tp, rep)]

    # Traditional crossover.
    assert tp[0] < rep[0]
    assert rep[-1] < tp[-1]
    # The adaptive algorithms track the best within a modest factor
    # across the whole range.
    assert all(a <= 1.35 * b for a, b in zip(a2p, best))
    assert all(a <= 1.35 * b for a, b in zip(arep, best))
    # And they avoid each traditional algorithm's catastrophic end.
    assert a2p[-1] < 0.75 * tp[-1]
    assert arep[0] < 0.75 * rep[0]
