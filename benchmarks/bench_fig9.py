"""Figure 9: output skew — four of the eight nodes hold a single group
value each; the rest of the groups live on the other four nodes.

Expected shape (the paper's headline skew result): the adaptive
algorithms beat BOTH traditional algorithms, because only the group-rich
nodes switch to repartitioning while the single-group nodes keep cheap
local aggregation — a per-node decision no static algorithm can make.
"""

from conftest import report

from repro.bench import figures


def test_fig9_output_skew(benchmark):
    result = benchmark.pedantic(figures.figure9, rounds=1, iterations=1)
    report(result)

    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    a2p = result.column("adaptive_two_phase")
    arep = result.column("adaptive_repartitioning")
    groups = result.column("num_groups")

    for i in range(len(tp)):
        best_traditional = min(tp[i], rep[i])
        # A-2P never loses to the best traditional algorithm...
        assert a2p[i] <= best_traditional * (1 + 1e-9), f"row {i}"
        # ...and wins outright once the group-rich nodes overflow their
        # hash tables (groups/4 heavy nodes > M = 400) and switch.
        if groups[i] / 4 > 400:
            assert a2p[i] < best_traditional, (
                f"row {i}: a2p={a2p[i]} vs best={best_traditional}"
            )
        # A-Rep stays below the worst traditional choice everywhere.
        assert arep[i] < max(tp[i], rep[i])
    # The paper's Section 6.2 ordering at the heavy end:
    # A-2P < A-Rep < Rep < Samp/2P.
    samp = result.column("sampling")
    assert a2p[-1] < arep[-1] < rep[-1] < max(samp[-1], tp[-1])
