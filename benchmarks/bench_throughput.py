"""Throughput of the real multiprocessing executor: pool vs spawn.

Workload: the Figure-2 evaluation shape — 100-byte tuples (int group
key, float value, padding), uniformly distributed groups at 0.5%
grouping selectivity, declustered round-robin over 8 worker fragments.

Both strategies compute bit-identical results; the comparison isolates
the data path.  ``strategy="spawn"`` is the pre-pool dispatch (one
freshly started process per fragment, the whole row list pickled to
it, a per-row aggregation loop).  ``strategy="pool"`` is the batched
path this benchmark gates: persistent workers fed fixed-width row
blocks through shared memory, aggregated by the vectorized kernel.
The gate asserts the pooled path moves at least ``MIN_SPEEDUP`` times
as many tuples per second.
"""

from conftest import best_run, fig2_workload, report

from repro.bench.harness import FigureResult
from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import mp_executor

NUM_TUPLES = 200_000
SELECTIVITY = 0.005
WORKERS = 8
REPEATS = 3
MIN_SPEEDUP = 3.0


def _best_run(dist, query, strategy):
    return best_run(
        dist, query, strategy, processes=WORKERS, repeats=REPEATS
    )


def test_throughput_pool_vs_spawn():
    dist = fig2_workload(NUM_TUPLES, SELECTIVITY, WORKERS, seed=42)
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )
    try:
        # One warm-up run so the pool's one-time worker forks (the cost
        # the pool exists to amortize) don't land inside the timing.
        mp_executor.multiprocessing_aggregate(
            dist, query, processes=WORKERS, strategy="pool"
        )
        pool_seconds, pool_rows = _best_run(dist, query, "pool")
        spawn_seconds, spawn_rows = _best_run(dist, query, "spawn")
    finally:
        mp_executor.shutdown_worker_pool()

    assert pool_rows == spawn_rows  # the whole point: faster, not different

    speedup = spawn_seconds / pool_seconds
    result = FigureResult(
        "throughput",
        "MP executor throughput: persistent shm pool vs spawn-per-fragment",
        ["strategy", "elapsed_seconds", "tuples_per_second",
         "speedup_vs_spawn"],
        notes=(
            f"{NUM_TUPLES} tuples, S={SELECTIVITY}, {WORKERS} workers, "
            f"best of {REPEATS}; wall-clock (machine-dependent, not under "
            f"the baseline figure gate — the gate is the >= {MIN_SPEEDUP}x "
            f"assertion in this test)"
        ),
    )
    result.add_row(
        "spawn", spawn_seconds, NUM_TUPLES / spawn_seconds, 1.0
    )
    result.add_row(
        "pool", pool_seconds, NUM_TUPLES / pool_seconds, speedup
    )
    report(result)

    assert speedup >= MIN_SPEEDUP, (
        f"pooled path is only {speedup:.2f}x spawn "
        f"(pool {pool_seconds:.3f}s, spawn {spawn_seconds:.3f}s); "
        f"expected >= {MIN_SPEEDUP}x"
    )
