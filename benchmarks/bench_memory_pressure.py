"""Memory-pressure sweep: shrinking byte budgets cost makespan and spill.

Shape assertions: every algorithm degrades monotonically as the budget
shrinks (spilled bytes take the place of resident partials), the
tightest budget spills strictly more than the most generous one, and
every governed run reports real pressure — the ladder is exercised, not
skated past.
"""

from conftest import report

from repro.bench.memory_pressure import CONTENDERS, budget_sweep


def test_budget_sweep(benchmark):
    result = benchmark.pedantic(budget_sweep, rounds=1, iterations=1)
    report(result)
    # Rows go from the most generous budget (fraction 1.0) to the
    # tightest (0.1), so both series must rise down the column.
    for name in CONTENDERS:
        makespan = result.column(name)
        assert all(a < b for a, b in zip(makespan, makespan[1:]))
        spill = result.column(f"{name}_spill_kb")
        assert spill[-1] > spill[0]
        assert all(kb > 0 for kb in spill)
