"""Execution skew (heterogeneous nodes) — completing the skew trilogy.

The paper covers input skew and output skew (data); this extension
measures *execution* skew: one node at 40% speed.  The honest result the
simulator produces: per-node algorithm adaptivity, which wins under
output skew, buys nothing here — the slow node's own scan+aggregate is
the critical path whatever strategy it runs.
"""

from conftest import report

from repro.bench.figures import SIM_NODES, SIM_QUERY
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform

NUM_TUPLES = 40_000
CONTENDERS = ("two_phase", "repartitioning", "adaptive_two_phase",
              "adaptive_repartitioning")


def _run_cpu_skew() -> FigureResult:
    result = FigureResult(
        "cpu_skew",
        "Execution skew: node 0 at 40% speed (simulator, 8 nodes)",
        ["num_groups", "config", *CONTENDERS],
    )
    factors = [0.4] + [1.0] * (SIM_NODES - 1)
    for groups in (8, 6400):
        dist = generate_uniform(NUM_TUPLES, groups, SIM_NODES, seed=0)
        params = default_parameters(dist)
        for label, speeds in (("uniform", None), ("skewed", factors)):
            row = [groups, label]
            for name in CONTENDERS:
                out = run_algorithm(
                    name, dist, SIM_QUERY, params=params,
                    node_speed_factors=speeds,
                )
                row.append(out.elapsed_seconds)
            result.add_row(*row)
    return result


def test_cpu_skew(benchmark):
    result = benchmark.pedantic(_run_cpu_skew, rounds=1, iterations=1)
    report(result)
    rows = {(r[0], r[1]): r[2:] for r in result.rows}
    for groups in (8, 6400):
        uniform = rows[(groups, "uniform")]
        skewed = rows[(groups, "skewed")]
        # Everyone pays for the slow node...
        for u, s in zip(uniform, skewed):
            assert s > 1.25 * u
        # ...and adaptivity does NOT rescue execution skew the way it
        # rescues output skew: A-2P's penalty matches plain 2P's.
        a2p_penalty = skewed[2] / uniform[2]
        tp_penalty = skewed[0] / uniform[0]
        assert abs(a2p_penalty - tp_penalty) < 0.5
