"""Columnar data path and the strategy family, head to head.

Two experiments on the Figure-2 evaluation tuple (100 bytes: group key,
float value, padding):

* ``test_columnar_vs_rowblock_string_keys`` — the tentpole gate.  With a
  *string* group key the PR-5 fixed-width row-block path cannot
  vectorize phase 1 (its kernel covers single int keys only) and falls
  back to the per-row Python loop; the columnar path ships dictionary
  codes and runs every aggregate through ``np.unique``/``np.bincount``.
  Both produce bit-identical results; the gate asserts the columnar
  path moves at least ``MIN_SPEEDUP`` times as many tuples per second.

* ``test_strategy_head_to_head`` — global hash-table aggregation vs
  partitioned 2P (pool) vs Rep across grouping selectivities, the
  trade-off the paper's Figure 2 sweeps.  Results must be identical at
  every point; the figure records the throughput of each strategy so
  the trajectory shows where the crossover sits on this substrate.
"""

import time

from conftest import STR_KEY_FORMAT, best_run, fig2_workload, report

from repro.bench.harness import FigureResult
from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import mp_executor

NUM_TUPLES = 150_000
SELECTIVITY = 0.005
WORKERS = 8
REPEATS = 3
MIN_SPEEDUP = 3.0

HEAD_TO_HEAD_TUPLES = 100_000
HEAD_TO_HEAD_SELECTIVITIES = (0.0005, 0.005, 0.05)
HEAD_TO_HEAD_STRATEGIES = ("pool", "global", "rep")

E2E_MIN_SPEEDUP = 8.0
E2E_STRATEGIES = ("global", "rep", "auto")


def _strkey_fig2(num_tuples, selectivity, num_nodes, seed=7,
                 columnar=True):
    """The Fig-2 shape with a string group key (16-byte key, 100-byte
    tuple) — representable by both codecs, vectorizable only by the
    dictionary-coded columnar path."""
    return fig2_workload(
        num_tuples, selectivity, num_nodes, seed=seed,
        key_format=STR_KEY_FORMAT, columnar=columnar,
    )


def _best_run(dist, query, strategy):
    return best_run(
        dist, query, strategy, processes=WORKERS, repeats=REPEATS
    )


def test_columnar_vs_rowblock_string_keys():
    # Row-born on purpose: this experiment isolates the *shipping* data
    # path (columnar vs fixed-width row blocks) over one identical row
    # source; the end-to-end sweep below covers the block-born path.
    dist = _strkey_fig2(NUM_TUPLES, SELECTIVITY, WORKERS, columnar=False)
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )
    try:
        mp_executor.multiprocessing_aggregate(  # warm up the pool forks
            dist, query, processes=WORKERS, strategy="pool"
        )
        col_seconds, col_rows = _best_run(dist, query, "pool")
        mp_executor.set_columnar_shipping(False)
        row_seconds, row_rows = _best_run(dist, query, "pool")
    finally:
        mp_executor.set_columnar_shipping(True)
        mp_executor.shutdown_worker_pool()

    assert col_rows == row_rows  # faster, not different

    speedup = row_seconds / col_seconds
    result = FigureResult(
        "columnar",
        "Columnar dictionary-coded blocks vs fixed-width row blocks "
        "(string group keys)",
        ["data_path", "elapsed_seconds", "tuples_per_second",
         "speedup_vs_rowblock"],
        notes=(
            f"{NUM_TUPLES} tuples, S={SELECTIVITY}, {WORKERS} workers, "
            f"str16 group key, best of {REPEATS}; wall-clock "
            f"(machine-dependent, not under the baseline figure gate — "
            f"the gate is the >= {MIN_SPEEDUP}x assertion in this test)"
        ),
    )
    result.add_row(
        "rowblock", row_seconds, NUM_TUPLES / row_seconds, 1.0
    )
    result.add_row(
        "columnar", col_seconds, NUM_TUPLES / col_seconds, speedup
    )
    report(result)

    assert speedup >= MIN_SPEEDUP, (
        f"columnar path is only {speedup:.2f}x the row-block path "
        f"(columnar {col_seconds:.3f}s, rowblock {row_seconds:.3f}s); "
        f"expected >= {MIN_SPEEDUP}x"
    )


def test_strategy_head_to_head():
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )
    result = FigureResult(
        "columnar_strategies",
        "Global hash table vs partitioned 2P (pool) vs Rep across "
        "grouping selectivities",
        ["selectivity", "strategy", "elapsed_seconds", "tuples_per_second"],
        notes=(
            f"{HEAD_TO_HEAD_TUPLES} tuples, {WORKERS} workers, best of "
            f"{REPEATS}; all strategies assert identical results at "
            f"every selectivity (wall-clock, machine-dependent)"
        ),
    )
    try:
        for selectivity in HEAD_TO_HEAD_SELECTIVITIES:
            dist = fig2_workload(
                HEAD_TO_HEAD_TUPLES, selectivity, WORKERS, seed=11
            )
            reference = None
            for strategy in HEAD_TO_HEAD_STRATEGIES:
                seconds, rows = _best_run(dist, query, strategy)
                if reference is None:
                    reference = rows
                else:
                    assert rows == reference, (
                        f"strategy {strategy!r} disagrees at "
                        f"S={selectivity}"
                    )
                result.add_row(
                    selectivity, strategy, seconds,
                    HEAD_TO_HEAD_TUPLES / seconds,
                )
    finally:
        mp_executor.shutdown_worker_pool()
    report(result)


def _timed_e2e(query, columnar, ship, strategy):
    """Best-of-REPEATS wall seconds for *generation plus aggregation*.

    Unlike :func:`_best_run` the generator runs inside the timed
    region: the end-to-end figure charges the row path for
    materializing tuples and the columnar path for nothing — blocks go
    generator -> shm -> kernel with zero row round-trips.
    """
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        mp_executor.set_columnar_shipping(ship)
        t0 = time.perf_counter()
        dist = _strkey_fig2(
            NUM_TUPLES, SELECTIVITY, WORKERS, columnar=columnar
        )
        result = mp_executor.multiprocessing_aggregate(
            dist, query, processes=WORKERS, strategy=strategy
        )
        best = min(best, time.perf_counter() - t0)
    mp_executor.set_columnar_shipping(True)
    return best, result


def test_end_to_end_columnar_sweep():
    """The PR-10 tentpole gate: generator -> ColumnBlock -> shm -> kernel
    with zero row round-trips, against the seed path (rows materialized
    at generation, fixed-width row blocks shipped, pool strategy).

    Every columnar strategy must be bit-identical to the seed result;
    the ``global`` figure (packed partials, vectorized parent fold)
    carries the >= ``E2E_MIN_SPEEDUP`` gate.
    """
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )
    result = FigureResult(
        "columnar_e2e",
        "End-to-end columnar (block-born generation + columnar shipping) "
        "vs the seed row path, string group keys",
        ["path", "strategy", "elapsed_seconds", "tuples_per_second",
         "speedup_vs_seed"],
        notes=(
            f"{NUM_TUPLES} tuples, S={SELECTIVITY}, {WORKERS} workers, "
            f"str16 group key, best of {REPEATS}, generation included in "
            f"the timing; wall-clock (machine-dependent, not under the "
            f"baseline figure gate — the gate is the >= "
            f"{E2E_MIN_SPEEDUP}x assertion on the global strategy)"
        ),
    )
    speedups = {}
    try:
        mp_executor.multiprocessing_aggregate(  # warm up the pool forks
            _strkey_fig2(NUM_TUPLES, SELECTIVITY, WORKERS),
            query, processes=WORKERS, strategy="pool",
        )
        seed_seconds, seed_rows = _timed_e2e(query, False, False, "pool")
        result.add_row(
            "seed_rows", "pool", seed_seconds,
            NUM_TUPLES / seed_seconds, 1.0,
        )
        for strategy in E2E_STRATEGIES:
            seconds, rows = _timed_e2e(query, True, True, strategy)
            assert rows == seed_rows, (
                f"columnar e2e strategy {strategy!r} disagrees with the "
                f"seed row path"
            )
            speedups[strategy] = seed_seconds / seconds
            result.add_row(
                "columnar_e2e", strategy, seconds,
                NUM_TUPLES / seconds, speedups[strategy],
            )
    finally:
        mp_executor.shutdown_worker_pool()
    report(result)

    assert speedups["global"] >= E2E_MIN_SPEEDUP, (
        f"end-to-end columnar (global) is only "
        f"{speedups['global']:.2f}x the seed row path; expected >= "
        f"{E2E_MIN_SPEEDUP}x"
    )
