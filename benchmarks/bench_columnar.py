"""Columnar data path and the strategy family, head to head.

Two experiments on the Figure-2 evaluation tuple (100 bytes: group key,
float value, padding):

* ``test_columnar_vs_rowblock_string_keys`` — the tentpole gate.  With a
  *string* group key the PR-5 fixed-width row-block path cannot
  vectorize phase 1 (its kernel covers single int keys only) and falls
  back to the per-row Python loop; the columnar path ships dictionary
  codes and runs every aggregate through ``np.unique``/``np.bincount``.
  Both produce bit-identical results; the gate asserts the columnar
  path moves at least ``MIN_SPEEDUP`` times as many tuples per second.

* ``test_strategy_head_to_head`` — global hash-table aggregation vs
  partitioned 2P (pool) vs Rep across grouping selectivities, the
  trade-off the paper's Figure 2 sweeps.  Results must be identical at
  every point; the figure records the throughput of each strategy so
  the trajectory shows where the crossover sits on this substrate.
"""

import time

from conftest import report

from repro.bench.harness import FigureResult
from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.parallel import mp_executor
from repro.storage.relation import DistributedRelation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_uniform, selectivity_to_groups

NUM_TUPLES = 150_000
SELECTIVITY = 0.005
WORKERS = 8
REPEATS = 3
MIN_SPEEDUP = 3.0

HEAD_TO_HEAD_TUPLES = 100_000
HEAD_TO_HEAD_SELECTIVITIES = (0.0005, 0.005, 0.05)
HEAD_TO_HEAD_STRATEGIES = ("pool", "global", "rep")


def _strkey_fig2(num_tuples, selectivity, num_nodes, seed=7):
    """The Fig-2 shape with a string group key (16-byte key, 100-byte
    tuple) — representable by both codecs, vectorizable only by the
    dictionary-coded columnar path."""
    base = generate_uniform(
        num_tuples=num_tuples,
        num_groups=selectivity_to_groups(selectivity, num_tuples),
        num_nodes=num_nodes,
        seed=seed,
    )
    schema = Schema([
        Column("gkey", "str", 16),
        Column("val", "float"),
        Column("pad", "str", 76),
    ])
    parts = [
        [(f"g{row[0]:08d}", row[1], "") for row in frag.relation.rows]
        for frag in base.fragments
    ]
    return DistributedRelation(schema, parts)


def _best_run(dist, query, strategy):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = mp_executor.multiprocessing_aggregate(
            dist, query, processes=WORKERS, strategy=strategy
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_columnar_vs_rowblock_string_keys():
    dist = _strkey_fig2(NUM_TUPLES, SELECTIVITY, WORKERS)
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )
    try:
        mp_executor.multiprocessing_aggregate(  # warm up the pool forks
            dist, query, processes=WORKERS, strategy="pool"
        )
        col_seconds, col_rows = _best_run(dist, query, "pool")
        mp_executor.set_columnar_shipping(False)
        row_seconds, row_rows = _best_run(dist, query, "pool")
    finally:
        mp_executor.set_columnar_shipping(True)
        mp_executor.shutdown_worker_pool()

    assert col_rows == row_rows  # faster, not different

    speedup = row_seconds / col_seconds
    result = FigureResult(
        "columnar",
        "Columnar dictionary-coded blocks vs fixed-width row blocks "
        "(string group keys)",
        ["data_path", "elapsed_seconds", "tuples_per_second",
         "speedup_vs_rowblock"],
        notes=(
            f"{NUM_TUPLES} tuples, S={SELECTIVITY}, {WORKERS} workers, "
            f"str16 group key, best of {REPEATS}; wall-clock "
            f"(machine-dependent, not under the baseline figure gate — "
            f"the gate is the >= {MIN_SPEEDUP}x assertion in this test)"
        ),
    )
    result.add_row(
        "rowblock", row_seconds, NUM_TUPLES / row_seconds, 1.0
    )
    result.add_row(
        "columnar", col_seconds, NUM_TUPLES / col_seconds, speedup
    )
    report(result)

    assert speedup >= MIN_SPEEDUP, (
        f"columnar path is only {speedup:.2f}x the row-block path "
        f"(columnar {col_seconds:.3f}s, rowblock {row_seconds:.3f}s); "
        f"expected >= {MIN_SPEEDUP}x"
    )


def test_strategy_head_to_head():
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("sum", "val"), AggregateSpec("count")],
    )
    result = FigureResult(
        "columnar_strategies",
        "Global hash table vs partitioned 2P (pool) vs Rep across "
        "grouping selectivities",
        ["selectivity", "strategy", "elapsed_seconds", "tuples_per_second"],
        notes=(
            f"{HEAD_TO_HEAD_TUPLES} tuples, {WORKERS} workers, best of "
            f"{REPEATS}; all strategies assert identical results at "
            f"every selectivity (wall-clock, machine-dependent)"
        ),
    )
    try:
        for selectivity in HEAD_TO_HEAD_SELECTIVITIES:
            dist = generate_uniform(
                num_tuples=HEAD_TO_HEAD_TUPLES,
                num_groups=selectivity_to_groups(
                    selectivity, HEAD_TO_HEAD_TUPLES
                ),
                num_nodes=WORKERS,
                seed=11,
            )
            reference = None
            for strategy in HEAD_TO_HEAD_STRATEGIES:
                seconds, rows = _best_run(dist, query, strategy)
                if reference is None:
                    reference = rows
                else:
                    assert rows == reference, (
                        f"strategy {strategy!r} disagrees at "
                        f"S={selectivity}"
                    )
                result.add_row(
                    selectivity, strategy, seconds,
                    HEAD_TO_HEAD_TUPLES / seconds,
                )
    finally:
        mp_executor.shutdown_worker_pool()
    report(result)
