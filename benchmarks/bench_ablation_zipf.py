"""Extension study: group-frequency skew (Zipf) and eviction.

The paper studies placement skew (input/output); frequency skew is the
dimension its successors optimized for.  With Zipf-distributed group
frequencies and distinct count >> M, the eviction-based streaming
pre-aggregation keeps heavy hitters resident, while A-2P (having
switched) forwards every remaining tuple raw and plain 2P spills.
"""

from conftest import report

from repro.bench.figures import SIM_NODES, SIM_QUERY
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform, generate_zipf

NUM_TUPLES = 60_000
NUM_GROUPS = 12_000
TABLE_ENTRIES = 150  # far below the distinct count: pressure everywhere

CONTENDERS = (
    "two_phase",
    "adaptive_two_phase",
    "streaming_pre_aggregation",
)


def _run_zipf_study() -> FigureResult:
    result = FigureResult(
        "ablation_zipf",
        "Frequency skew: elapsed seconds and MB sent vs Zipf alpha "
        f"({NUM_GROUPS} groups, M={TABLE_ENTRIES})",
        [
            "alpha",
            *CONTENDERS,
            *(f"{name}_mb" for name in CONTENDERS),
        ],
        notes="alpha=0 is uniform; larger alpha = heavier hitters",
    )
    for alpha in (0.0, 0.8, 1.2, 1.6):
        if alpha == 0.0:
            dist = generate_uniform(
                NUM_TUPLES, NUM_GROUPS, SIM_NODES, seed=0
            )
        else:
            dist = generate_zipf(
                NUM_TUPLES, NUM_GROUPS, SIM_NODES, alpha=alpha, seed=0
            )
        params = default_parameters(
            dist, hash_table_entries=TABLE_ENTRIES
        )
        times, traffic = [], []
        for name in CONTENDERS:
            out = run_algorithm(name, dist, SIM_QUERY, params=params)
            times.append(out.elapsed_seconds)
            traffic.append(out.metrics.total_bytes_sent / 1e6)
        result.add_row(alpha, *times, *traffic)
    return result


def test_ablation_zipf_frequency_skew(benchmark):
    result = benchmark.pedantic(_run_zipf_study, rounds=1, iterations=1)
    report(result)
    stream_mb = result.column("streaming_pre_aggregation_mb")
    a2p_mb = result.column("adaptive_two_phase_mb")
    # Heavier skew monotonically shrinks the eviction engine's traffic.
    assert stream_mb[-1] < stream_mb[0]
    # At strong skew the eviction engine ships less than A-2P...
    assert stream_mb[-1] < a2p_mb[-1]
    # ...and is at least competitive on elapsed time.
    stream_t = result.column("streaming_pre_aggregation")
    a2p_t = result.column("adaptive_two_phase")
    assert stream_t[-1] <= 1.15 * a2p_t[-1]
