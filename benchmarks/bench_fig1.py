"""Figure 1: traditional algorithms vs grouping selectivity (analytical).

Expected shape: both Two Phase variants flat and cheap at low S; C-2P
explodes as the coordinator serializes; Repartitioning pays a constant
premium at low S (idle processors) but wins at high S; the Ethernet
variant of Repartitioning is strictly worse than the SP-2 variant.
"""

from conftest import report

from repro.bench import figures


def test_fig1_traditional_algorithms(benchmark):
    result = benchmark.pedantic(figures.figure1, rounds=1, iterations=1)
    report(result)

    c2p = result.column("centralized_two_phase")
    tp = result.column("two_phase")
    rep = result.column("repartitioning_sp2")
    rep_eth = result.column("repartitioning_ethernet")

    # Two Phase wins the low end, Repartitioning the high end.
    assert tp[0] < rep[0]
    assert rep[-1] < tp[-1]
    # The coordinator bottleneck dwarfs everything at high selectivity.
    assert c2p[-1] > 5 * tp[-1]
    # At one group C-2P and 2P coincide (nothing to parallelize).
    assert abs(c2p[0] - tp[0]) / tp[0] < 0.05
    # Ethernet strictly hurts Repartitioning everywhere.
    assert all(e >= s for e, s in zip(rep_eth, rep))
    assert rep_eth[-1] > 2 * rep[-1]
