"""Section 6.1: input skew (one node holds 4x the tuples).

Expected shape: input skew mainly inflates the skewed node's scan I/O, so
every algorithm degrades; with many groups, Two Phase suffers most
because the skewed node also aggregates its excess locally, while the
repartitioning family spreads the aggregation work.
"""

from conftest import report

from repro.bench import figures
from repro.bench.figures import SIM_NODES, SIM_QUERY, SIM_TUPLES
from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform
from repro.workloads.skew import generate_input_skew


def test_input_skew_study(benchmark):
    result = benchmark.pedantic(
        figures.input_skew_study, rounds=1, iterations=1
    )
    report(result)

    # Every algorithm is slower under input skew than on uniform data of
    # the same size (the skewed node is the critical path).
    groups = 6400
    skewed = generate_input_skew(
        SIM_TUPLES, groups, SIM_NODES, skew_factor=4.0, seed=0
    )
    uniform = generate_uniform(SIM_TUPLES, groups, SIM_NODES, seed=0)
    for name in ("two_phase", "repartitioning", "adaptive_two_phase"):
        t_skew = run_algorithm(
            name, skewed, SIM_QUERY, params=default_parameters(skewed)
        ).elapsed_seconds
        t_uni = run_algorithm(
            name, uniform, SIM_QUERY, params=default_parameters(uniform)
        ).elapsed_seconds
        assert t_skew > t_uni, name
