"""Figure 2: traditional algorithms in an operator pipeline (no I/O).

Expected shape: without scan/store I/O amortizing the CPU, Two Phase's
duplicated aggregation work shows earlier, strengthening the case for
including Repartitioning — the figure's purpose in the paper.
"""

from conftest import report

from repro.bench import figures


def test_fig2_operator_pipeline(benchmark):
    result = benchmark.pedantic(figures.figure2, rounds=1, iterations=1)
    report(result)

    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    c2p = result.column("centralized_two_phase")

    assert tp[0] < rep[0]
    assert rep[-1] < tp[-1]
    assert c2p[-1] > tp[-1]
    # Pipeline costs must be below the with-I/O costs of Figure 1.
    fig1 = figures.figure1()
    assert tp[-1] < fig1.column("two_phase")[-1]
    # Rep's relative advantage at high S grows without I/O (the point
    # of the figure).
    ratio_pipe = tp[-1] / rep[-1]
    ratio_io = (
        fig1.column("two_phase")[-1] / fig1.column("repartitioning_sp2")[-1]
    )
    assert ratio_pipe > ratio_io
