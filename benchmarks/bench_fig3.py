"""Figure 3: the adaptive algorithms track the per-point best algorithm
(analytical, 32 nodes, high-bandwidth network).

Expected shape: Samp = best + a small constant; A-2P within a small
overhead of the best everywhere; A-Rep matches Rep at high S and recovers
(with a small penalty) at low S.
"""

from conftest import report

from repro.bench import figures


def test_fig3_adaptive_tracking(benchmark):
    result = benchmark.pedantic(figures.figure3, rounds=1, iterations=1)
    report(result)

    tp = result.column("two_phase")
    rep = result.column("repartitioning")
    samp = result.column("sampling")
    a2p = result.column("adaptive_two_phase")
    arep = result.column("adaptive_repartitioning")
    best = [min(a, b) for a, b in zip(tp, rep)]

    # A-2P tracks the best algorithm within a modest overhead everywhere.
    assert all(a <= 1.25 * b for a, b in zip(a2p, best))
    # Sampling = best + near-constant overhead.
    overheads = [s - b for s, b in zip(samp, best)]
    assert all(o >= -1e-9 for o in overheads)
    assert max(overheads) < 0.15 * max(best)
    # A-Rep equals Rep at the top of the range...
    assert abs(arep[-1] - rep[-1]) < 1e-6
    # ...and escapes Rep's low-selectivity penalty.
    assert arep[0] < 0.5 * rep[0]
