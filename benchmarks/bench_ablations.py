"""Ablations of the design choices DESIGN.md calls out (simulator)."""

from conftest import report

from repro.bench import ablations


def test_ablation_a2p_switch_threshold(benchmark):
    """Switching at memory-full must beat spilling for small M, and the
    two must coincide once M holds every local group."""
    result = benchmark.pedantic(
        ablations.a2p_switch_threshold, rounds=1, iterations=1
    )
    report(result)
    a2p = result.column("adaptive_two_phase")
    tp = result.column("two_phase")
    switched = result.column("a2p_switched")
    # Small M: the nodes switch and avoid 2P's spill I/O.
    assert switched[0] > 0
    assert a2p[0] < tp[0]
    # Big M: no switch — A-2P literally runs 2P.
    assert switched[-1] == 0
    assert abs(a2p[-1] - tp[-1]) < 1e-9


def test_ablation_arep_init_seg(benchmark):
    """More observation = more raw tuples shipped before falling back."""
    result = benchmark.pedantic(
        ablations.arep_init_seg, rounds=1, iterations=1
    )
    report(result)
    elapsed = result.column("adaptive_repartitioning")
    switched = result.column("switched")
    assert all(switched[:-1])  # small init_segs detect the few groups
    # Elapsed time grows (weakly) with init_seg in the fallback regime.
    assert elapsed[0] <= elapsed[-2] * 1.05


def test_ablation_sampling_threshold(benchmark):
    """The threshold flips the decision exactly where it should."""
    result = benchmark.pedantic(
        ablations.sampling_threshold, rounds=1, iterations=1
    )
    report(result)
    rows = {
        (g, t): (e, c)
        for g, t, e, c in result.rows
    }
    # 8 groups: every threshold above 8 keeps Two Phase.
    assert rows[(8, 80)][1] == "two_phase"
    assert rows[(8, 6400)][1] == "two_phase"
    # 40000 groups: every threshold picks Repartitioning.
    assert rows[(40_000, 20)][1] == "repartitioning"
    assert rows[(40_000, 6400)][1] == "repartitioning"
    # 3200 groups: the decision flips with the threshold — below 3200
    # the lower bound clears it (Repartitioning), above it it cannot.
    assert rows[(3200, 20)][1] == "repartitioning"
    assert rows[(3200, 320)][1] == "repartitioning"
    assert rows[(3200, 6400)][1] == "two_phase"


def test_ablation_optimized_two_phase(benchmark):
    """Graefe's optimization vs A-2P: A-2P must avoid the catastrophic
    high-selectivity end and keep spill I/O lower."""
    result = benchmark.pedantic(
        ablations.optimized_vs_adaptive, rounds=1, iterations=1
    )
    report(result)
    opt = result.column("optimized_two_phase")
    a2p = result.column("adaptive_two_phase")
    tp = result.column("two_phase")
    # Both beat plain 2P at the duplicate-elimination end.
    assert opt[-1] < tp[-1]
    assert a2p[-1] < tp[-1]
    # At the top of the range A-2P is at least competitive with the
    # optimization the paper argues it dominates.  (Measured nuance for
    # EXPERIMENTS.md: on the slow bus optimized 2P is genuinely strong
    # in the middle range, because resident groups keep absorbing tuples
    # locally and cut network volume — the paper's preference for A-2P
    # rests on the memory-holding and duplicated-work arguments.)
    assert a2p[-1] <= 1.1 * opt[-1]
