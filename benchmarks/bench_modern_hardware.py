"""Extension: the paper's trade-offs on 2025-era hardware.

The novelty assessment notes adaptive/partial aggregation became standard
practice (Spark, DuckDB, Flink).  This bench replays the crossover
analysis with modern parameters — NVMe-class storage, a 100 Gb/s fabric,
~250x the CPU — and shows *why* the field moved where it did: the
network stopped being the argument against repartitioning, so shuffles
with bounded pre-aggregation (our streaming engine, A-2P's descendant)
became the default.
"""

from conftest import report

from repro.bench.harness import FigureResult
from repro.costmodel import model_cost
from repro.costmodel.crossover import find_crossover
from repro.costmodel.params import SystemParameters


def modern_parameters() -> SystemParameters:
    """A plausible 2025 node set in Table 1 terms (same 32-node shape).

    10k MIPS-equivalents per core-ish executor, 50 µs NVMe page reads,
    100 µs random, 100 Gb/s fabric → a 4 KB page moves in ~0.4 µs (we
    charge 1 µs to cover framing), message protocol ~200 instructions.
    """
    return SystemParameters(
        mips=10_000.0,
        io_seconds=50e-6,
        random_io_seconds=100e-6,
        msg_latency_seconds=1e-6,
        msg_protocol_instr=200.0,
        hash_table_entries=1_000_000,
    )


def _run_modern_study() -> FigureResult:
    result = FigureResult(
        "modern_hardware",
        "1995 vs 2025 hardware: crossover and algorithm costs "
        "(analytical, 32 nodes, 8M tuples)",
        ["era", "selectivity", "two_phase", "repartitioning",
         "adaptive_two_phase", "crossover"],
    )
    for era, params in (
        ("1995", SystemParameters.paper_default()),
        ("2025", modern_parameters()),
    ):
        s_star = find_crossover(params)
        for s in (1.25e-7, 1e-3, 0.5):
            result.add_row(
                era,
                s,
                model_cost("two_phase", params, s).total_seconds,
                model_cost("repartitioning", params, s).total_seconds,
                model_cost(
                    "adaptive_two_phase", params, s
                ).total_seconds,
                -1.0 if s_star is None else s_star,
            )
    return result


def test_modern_hardware(benchmark):
    result = benchmark.pedantic(_run_modern_study, rounds=1, iterations=1)
    report(result)
    rows = {(r[0], r[1]): r for r in result.rows}

    low = 1.25e-7  # scalar aggregation: Rep's worst case
    # The 1995 trade-off is real: 2P wins scalar aggregation 8x.
    assert rows[("1995", low)][2] < 0.2 * rows[("1995", low)][3]
    # On 2025 hardware Rep's excess over 2P at low S collapses (the
    # network argument against repartitioning is gone)...
    def excess(era):
        row = rows[(era, low)]
        return (row[3] - row[2]) / row[2]

    assert excess("2025") < excess("1995") / 4
    # ...and everything is just much faster.
    assert rows[("2025", 0.5)][3] < 0.05 * rows[("1995", 0.5)][3]
    # A-2P still tracks the best on both eras — the adaptive rule aged
    # well, which is the point.
    for era in ("1995", "2025"):
        for s in (low, 1e-3, 0.5):
            row = rows[(era, s)]
            assert row[4] <= 1.3 * min(row[2], row[3])
