"""Section 5's validation claim: the simulator agrees with the model."""

from conftest import report

from repro.bench import validation


def test_model_vs_simulator_agreement(benchmark):
    result = benchmark.pedantic(
        validation.model_vs_simulator, rounds=1, iterations=1
    )
    report(result)
    regret = result.column("regret")
    rho = result.column("rank_correlation")
    model_w = result.column("model_winner")
    sim_w = result.column("sim_winner")
    # Following the model's advice never costs much over the simulator's
    # true best — "performed almost as expected" (Section 5).  The ~1.24
    # worst case at tiny group counts is the per-message block minimum
    # the model does not charge (documented in EXPERIMENTS.md).
    assert all(r <= 1.3 for r in regret), regret
    # At the high-selectivity end (where the algorithms diverge by 2x+)
    # the two sides crown the same winner outright.
    assert model_w[-1] == sim_w[-1] == "repartitioning"
    # Orderings correlate positively across the sweep.
    assert sum(rho) / len(rho) > 0.5
